//! A small streaming (SAX-style) XML pull parser.
//!
//! The parser covers the XML subset needed for filtering workloads: element
//! structure, attributes, character data, CDATA sections, comments,
//! processing instructions, the XML declaration, a DOCTYPE prolog (skipped),
//! and the five predefined entities plus numeric character references. It
//! reports errors as a structured [`XmlErrorKind`] with a byte offset,
//! checks tag balance, and enforces per-document resource budgets
//! ([`ParserLimits`]) so hostile inputs (depth bombs, entity floods,
//! megabyte attribute values) fail fast instead of exhausting the process.

use crate::limits::ParserLimits;
use std::fmt;

/// An attribute on a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (qualified, prefixes are kept verbatim).
    pub name: String,
    /// Decoded attribute value.
    pub value: String,
}

/// A parsing event produced by [`Reader::next_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v">` or `<name/>` (the latter sets `self_closing` and is
    /// *not* followed by a matching [`Event::End`]).
    Start {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
        /// True for `<name/>`.
        self_closing: bool,
    },
    /// `</name>`.
    End {
        /// Element name.
        name: String,
    },
    /// Character data between tags (entity-decoded). Whitespace-only runs are
    /// suppressed.
    Text(String),
    /// End of input.
    Eof,
}

/// What went wrong while parsing a document — the structured half of
/// [`XmlError`].
///
/// Syntax violations and resource-limit violations are distinct variants
/// so the ingest pipeline can distinguish a malformed publisher from a
/// hostile one (see [`XmlError::is_limit`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended inside the named construct (comment, CDATA section,
    /// DOCTYPE declaration, processing instruction, attribute value, …).
    Unterminated(&'static str),
    /// Input ended while the named element was still open.
    UnexpectedEof(String),
    /// `</found>` closed an element opened as `<expected>`.
    MismatchedEndTag {
        /// The open element that should have been closed.
        expected: String,
        /// The name actually found in the end tag.
        found: String,
    },
    /// An end tag with no open element.
    UnmatchedEndTag(String),
    /// A second root element.
    MultipleRoots,
    /// The named content (character data, CDATA) appeared outside the root.
    ContentOutsideRoot(&'static str),
    /// A name was required (element, attribute) but not found.
    InvalidName,
    /// A static syntax violation (expected `>`, quote, …).
    Syntax(&'static str),
    /// Missing `=` after the named attribute.
    ExpectedEquals(String),
    /// The named attribute appeared twice on one element.
    DuplicateAttribute(String),
    /// Non-UTF-8 bytes in the named context.
    InvalidUtf8(&'static str),
    /// Reference to an entity the parser does not define.
    UnknownEntity(String),
    /// A numeric character reference that is not a valid scalar value.
    InvalidCharRef(String),
    /// A document with no elements.
    EmptyDocument,
    /// Element nesting exceeded [`ParserLimits::max_depth`].
    DepthLimitExceeded(usize),
    /// Document exceeded [`ParserLimits::max_document_bytes`].
    DocumentTooLarge(usize),
    /// One element carried more than [`ParserLimits::max_attributes`].
    TooManyAttributes(usize),
    /// An attribute value exceeded
    /// [`ParserLimits::max_attribute_value_len`].
    AttributeValueTooLong(usize),
    /// A name exceeded [`ParserLimits::max_name_len`].
    NameTooLong(usize),
    /// More references decoded than
    /// [`ParserLimits::max_entity_expansions`].
    EntityExpansionLimit(usize),
    /// A byte stream ended in the middle of a document.
    StreamTruncated,
    /// Unparseable content between documents on a stream (stray end tags,
    /// leftovers of an oversized document).
    StreamDesync,
    /// A document stream gave up after this many consecutive failures.
    TooManyFailures(usize),
    /// An I/O error while reading a stream.
    Io(String),
}

impl fmt::Display for XmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlErrorKind::Unterminated(what) => write!(f, "unterminated {what}"),
            XmlErrorKind::UnexpectedEof(open) => {
                write!(f, "unexpected end of input: <{open}> not closed")
            }
            XmlErrorKind::MismatchedEndTag { expected, found } => write!(
                f,
                "mismatched end tag: expected </{expected}>, found </{found}>"
            ),
            XmlErrorKind::UnmatchedEndTag(name) => {
                write!(f, "end tag </{name}> with no open element")
            }
            XmlErrorKind::MultipleRoots => f.write_str("document has more than one root element"),
            XmlErrorKind::ContentOutsideRoot(what) => {
                write!(f, "{what} outside of root element")
            }
            XmlErrorKind::InvalidName => f.write_str("expected a name"),
            XmlErrorKind::Syntax(msg) => f.write_str(msg),
            XmlErrorKind::ExpectedEquals(attr) => {
                write!(f, "expected '=' after attribute name '{attr}'")
            }
            XmlErrorKind::DuplicateAttribute(name) => write!(f, "duplicate attribute '{name}'"),
            XmlErrorKind::InvalidUtf8(what) => write!(f, "invalid UTF-8 in {what}"),
            XmlErrorKind::UnknownEntity(ent) => write!(f, "unknown entity '&{ent};'"),
            XmlErrorKind::InvalidCharRef(ent) => {
                write!(f, "invalid character reference '&{ent};'")
            }
            XmlErrorKind::EmptyDocument => f.write_str("empty document"),
            XmlErrorKind::DepthLimitExceeded(limit) => {
                write!(f, "element nesting deeper than the limit of {limit}")
            }
            XmlErrorKind::DocumentTooLarge(limit) => {
                write!(f, "document exceeds the limit of {limit} bytes")
            }
            XmlErrorKind::TooManyAttributes(limit) => {
                write!(f, "element has more than {limit} attributes")
            }
            XmlErrorKind::AttributeValueTooLong(limit) => {
                write!(f, "attribute value exceeds the limit of {limit} bytes")
            }
            XmlErrorKind::NameTooLong(limit) => {
                write!(f, "name exceeds the limit of {limit} bytes")
            }
            XmlErrorKind::EntityExpansionLimit(limit) => {
                write!(f, "more than {limit} entity references in one document")
            }
            XmlErrorKind::StreamTruncated => f.write_str("stream ended inside a document"),
            XmlErrorKind::StreamDesync => f.write_str("unparseable content between documents"),
            XmlErrorKind::TooManyFailures(n) => {
                write!(f, "{n} consecutive malformed documents on the stream")
            }
            XmlErrorKind::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

/// Error produced while parsing an XML document: a structured kind plus
/// the byte offset at which it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset at which the error occurred. For errors yielded by a
    /// [`DocumentStream`](crate::DocumentStream) the offset is
    /// stream-absolute (relative to the first byte ever read), otherwise
    /// it is relative to the document's own first byte.
    pub pos: usize,
    /// What went wrong.
    pub kind: XmlErrorKind,
}

impl XmlError {
    /// Creates an error at a byte offset.
    pub fn new(pos: usize, kind: XmlErrorKind) -> Self {
        XmlError { pos, kind }
    }

    /// True if the error is a resource-limit violation ([`ParserLimits`])
    /// rather than a syntax error.
    pub fn is_limit(&self) -> bool {
        matches!(
            self.kind,
            XmlErrorKind::DepthLimitExceeded(_)
                | XmlErrorKind::DocumentTooLarge(_)
                | XmlErrorKind::TooManyAttributes(_)
                | XmlErrorKind::AttributeValueTooLong(_)
                | XmlErrorKind::NameTooLong(_)
                | XmlErrorKind::EntityExpansionLimit(_)
        )
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.pos, self.kind)
    }
}

impl std::error::Error for XmlError {}

/// Streaming pull parser over a byte slice.
///
/// ```
/// use pxf_xml::{Event, Reader};
/// let mut r = Reader::new(b"<a x=\"1\"><b/>hi</a>");
/// assert!(matches!(r.next_event().unwrap(), Event::Start { ref name, .. } if name == "a"));
/// assert!(matches!(r.next_event().unwrap(), Event::Start { self_closing: true, .. }));
/// assert!(matches!(r.next_event().unwrap(), Event::Text(ref t) if t == "hi"));
/// assert!(matches!(r.next_event().unwrap(), Event::End { .. }));
/// assert!(matches!(r.next_event().unwrap(), Event::Eof));
/// ```
pub struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
    /// Open-tag stack for balance checking.
    stack: Vec<String>,
    done: bool,
    seen_root: bool,
    limits: ParserLimits,
    /// Entity/character references decoded so far (budgeted).
    expansions: usize,
    /// Whole-document size checked on the first `next_event` call.
    size_checked: bool,
}

impl<'a> Reader<'a> {
    /// Creates a reader over raw document bytes with default limits.
    pub fn new(input: &'a [u8]) -> Self {
        Reader::with_limits(input, ParserLimits::default())
    }

    /// Creates a reader enforcing the given resource budget.
    pub fn with_limits(input: &'a [u8], limits: ParserLimits) -> Self {
        Reader {
            input,
            pos: 0,
            stack: Vec::with_capacity(16),
            done: false,
            seen_root: false,
            limits,
            expansions: 0,
            size_checked: false,
        }
    }

    /// The resource budget this reader enforces.
    pub fn limits(&self) -> &ParserLimits {
        &self.limits
    }

    fn error(&self, kind: XmlErrorKind) -> XmlError {
        XmlError {
            pos: self.pos,
            kind,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Advances past `needle`, erroring if the input ends first.
    fn skip_until(&mut self, needle: &[u8], what: &'static str) -> Result<(), XmlError> {
        while self.pos < self.input.len() {
            if self.starts_with(needle) {
                self.pos += needle.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.error(XmlErrorKind::Unterminated(what)))
    }

    /// Returns the next event, or an error on malformed input.
    pub fn next_event(&mut self) -> Result<Event, XmlError> {
        if !self.size_checked {
            self.size_checked = true;
            if self.input.len() > self.limits.max_document_bytes {
                return Err(XmlError::new(
                    self.limits.max_document_bytes,
                    XmlErrorKind::DocumentTooLarge(self.limits.max_document_bytes),
                ));
            }
        }
        loop {
            if self.done {
                return Ok(Event::Eof);
            }
            if self.pos >= self.input.len() {
                if let Some(open) = self.stack.last() {
                    return Err(self.error(XmlErrorKind::UnexpectedEof(open.clone())));
                }
                self.done = true;
                return Ok(Event::Eof);
            }
            if self.peek() == Some(b'<') {
                if self.starts_with(b"<!--") {
                    self.pos += 4;
                    self.skip_until(b"-->", "comment")?;
                    continue;
                }
                if self.starts_with(b"<![CDATA[") {
                    self.pos += 9;
                    let start = self.pos;
                    self.skip_until(b"]]>", "CDATA section")?;
                    let text = &self.input[start..self.pos - 3];
                    if self.stack.is_empty() {
                        return Err(self.error(XmlErrorKind::ContentOutsideRoot("CDATA")));
                    }
                    if !text.iter().all(u8::is_ascii_whitespace) {
                        let s = std::str::from_utf8(text)
                            .map_err(|_| self.error(XmlErrorKind::InvalidUtf8("CDATA")))?;
                        return Ok(Event::Text(s.to_string()));
                    }
                    continue;
                }
                if self.starts_with(b"<!DOCTYPE") || self.starts_with(b"<!doctype") {
                    self.skip_doctype()?;
                    continue;
                }
                if self.starts_with(b"<?") {
                    self.pos += 2;
                    self.skip_until(b"?>", "processing instruction")?;
                    continue;
                }
                if self.starts_with(b"</") {
                    return self.parse_end_tag();
                }
                return self.parse_start_tag();
            }
            // Character data.
            let start = self.pos;
            while self.pos < self.input.len() && self.peek() != Some(b'<') {
                self.pos += 1;
            }
            let raw = &self.input[start..self.pos];
            if raw.iter().all(u8::is_ascii_whitespace) {
                continue;
            }
            if self.stack.is_empty() {
                return Err(XmlError::new(
                    start,
                    XmlErrorKind::ContentOutsideRoot("character data"),
                ));
            }
            let decoded = decode_entities(raw, start, &mut self.expansions, &self.limits)?;
            return Ok(Event::Text(decoded));
        }
    }

    /// Skips a DOCTYPE declaration, including an internal subset in `[...]`.
    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        self.pos += 9; // "<!DOCTYPE"
        let mut depth = 0usize;
        while self.pos < self.input.len() {
            match self.input[self.pos] {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(self.error(XmlErrorKind::Unterminated("DOCTYPE declaration")))
    }

    fn parse_start_tag(&mut self) -> Result<Event, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        if self.seen_root && self.stack.is_empty() {
            return Err(self.error(XmlErrorKind::MultipleRoots));
        }
        if self.stack.len() >= self.limits.max_depth {
            return Err(self.error(XmlErrorKind::DepthLimitExceeded(self.limits.max_depth)));
        }
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    self.seen_root = true;
                    self.stack.push(name.clone());
                    return Ok(Event::Start {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.error(XmlErrorKind::Syntax(
                            "expected '>' after '/' in empty-element tag",
                        )));
                    }
                    self.pos += 1;
                    self.seen_root = true;
                    return Ok(Event::Start {
                        name,
                        attributes,
                        self_closing: true,
                    });
                }
                Some(_) => {
                    if attributes.len() >= self.limits.max_attributes {
                        return Err(
                            self.error(XmlErrorKind::TooManyAttributes(self.limits.max_attributes))
                        );
                    }
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.error(XmlErrorKind::ExpectedEquals(attr_name)));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => {
                            return Err(
                                self.error(XmlErrorKind::Syntax("expected quoted attribute value"))
                            )
                        }
                    };
                    self.pos += 1;
                    let vstart = self.pos;
                    while self.pos < self.input.len() && self.input[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos >= self.input.len() {
                        return Err(self.error(XmlErrorKind::Unterminated("attribute value")));
                    }
                    if self.pos - vstart > self.limits.max_attribute_value_len {
                        return Err(XmlError::new(
                            vstart,
                            XmlErrorKind::AttributeValueTooLong(
                                self.limits.max_attribute_value_len,
                            ),
                        ));
                    }
                    let raw = &self.input[vstart..self.pos];
                    let value = decode_entities(raw, vstart, &mut self.expansions, &self.limits)?;
                    self.pos += 1;
                    if attributes.iter().any(|a: &Attribute| a.name == attr_name) {
                        return Err(self.error(XmlErrorKind::DuplicateAttribute(attr_name)));
                    }
                    attributes.push(Attribute {
                        name: attr_name,
                        value,
                    });
                }
                None => return Err(self.error(XmlErrorKind::Unterminated("start tag"))),
            }
        }
    }

    fn parse_end_tag(&mut self) -> Result<Event, XmlError> {
        self.pos += 2; // "</"
        let name = self.parse_name()?;
        self.skip_ws();
        if self.peek() != Some(b'>') {
            return Err(self.error(XmlErrorKind::Syntax("expected '>' in end tag")));
        }
        self.pos += 1;
        match self.stack.pop() {
            Some(open) if open == name => Ok(Event::End { name }),
            Some(open) => Err(self.error(XmlErrorKind::MismatchedEndTag {
                expected: open,
                found: name,
            })),
            None => Err(self.error(XmlErrorKind::UnmatchedEndTag(name))),
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => self.pos += 1,
            _ => return Err(self.error(XmlErrorKind::InvalidName)),
        }
        while matches!(self.peek(), Some(b) if is_name_char(b)) {
            self.pos += 1;
        }
        if self.pos - start > self.limits.max_name_len {
            return Err(XmlError::new(
                start,
                XmlErrorKind::NameTooLong(self.limits.max_name_len),
            ));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map(|s| s.to_string())
            .map_err(|_| self.error(XmlErrorKind::InvalidUtf8("name")))
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.') || b >= 0x80
}

/// Decodes the five predefined entities and numeric character references,
/// charging each reference against the document's expansion budget.
fn decode_entities(
    raw: &[u8],
    base: usize,
    expansions: &mut usize,
    limits: &ParserLimits,
) -> Result<String, XmlError> {
    let s = std::str::from_utf8(raw).map_err(|_| XmlError {
        pos: base,
        kind: XmlErrorKind::InvalidUtf8("character data"),
    })?;
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or_else(|| XmlError {
            pos: base + amp,
            kind: XmlErrorKind::Unterminated("entity reference"),
        })?;
        *expansions += 1;
        if *expansions > limits.max_entity_expansions {
            return Err(XmlError::new(
                base + amp,
                XmlErrorKind::EntityExpansionLimit(limits.max_entity_expansions),
            ));
        }
        let ent = &after[..semi];
        match ent {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with('#') => {
                let code = if let Some(hex) = ent.strip_prefix("#x").or(ent.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()
                } else {
                    ent[1..].parse::<u32>().ok()
                };
                let c = code.and_then(char::from_u32).ok_or_else(|| XmlError {
                    pos: base + amp,
                    kind: XmlErrorKind::InvalidCharRef(ent.to_string()),
                })?;
                out.push(c);
            }
            _ => {
                return Err(XmlError {
                    pos: base + amp,
                    kind: XmlErrorKind::UnknownEntity(ent.to_string()),
                })
            }
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Result<Vec<Event>, XmlError> {
        events_limited(input, ParserLimits::default())
    }

    fn events_limited(input: &str, limits: ParserLimits) -> Result<Vec<Event>, XmlError> {
        let mut r = Reader::with_limits(input.as_bytes(), limits);
        let mut out = Vec::new();
        loop {
            let e = r.next_event()?;
            let eof = e == Event::Eof;
            out.push(e);
            if eof {
                return Ok(out);
            }
        }
    }

    #[test]
    fn basic_document() {
        let ev = events("<a><b>text</b><c/></a>").unwrap();
        assert_eq!(ev.len(), 7);
        assert!(matches!(&ev[0], Event::Start { name, .. } if name == "a"));
        assert!(matches!(&ev[2], Event::Text(t) if t == "text"));
        assert!(matches!(&ev[4], Event::Start { name, self_closing: true, .. } if name == "c"));
    }

    #[test]
    fn attributes_parsed() {
        let ev = events(r#"<a x="1" y='two'/>"#).unwrap();
        match &ev[0] {
            Event::Start { attributes, .. } => {
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0].name, "x");
                assert_eq!(attributes[0].value, "1");
                assert_eq!(attributes[1].value, "two");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entities_decoded() {
        let ev = events("<a>&lt;hi&gt; &amp; &#65;&#x42;</a>").unwrap();
        assert!(matches!(&ev[1], Event::Text(t) if t == "<hi> & AB"));
        let ev = events(r#"<a v="&quot;q&apos;"/>"#).unwrap();
        match &ev[0] {
            Event::Start { attributes, .. } => assert_eq!(attributes[0].value, "\"q'"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prolog_comments_cdata() {
        let src = r#"<?xml version="1.0"?>
            <!DOCTYPE a [<!ELEMENT a (b)>]>
            <!-- top comment -->
            <a><!-- inner --><![CDATA[raw <stuff> & more]]></a>"#;
        let ev = events(src).unwrap();
        assert!(matches!(&ev[0], Event::Start { name, .. } if name == "a"));
        assert!(matches!(&ev[1], Event::Text(t) if t == "raw <stuff> & more"));
    }

    #[test]
    fn whitespace_text_suppressed() {
        let ev = events("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(ev.len(), 4); // start a, start b, end a, eof
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(matches!(
            events("<a><b></a></b>").unwrap_err().kind,
            XmlErrorKind::MismatchedEndTag { .. }
        ));
        assert!(matches!(
            events("<a>").unwrap_err().kind,
            XmlErrorKind::UnexpectedEof(_)
        ));
        assert!(matches!(
            events("</a>").unwrap_err().kind,
            XmlErrorKind::UnmatchedEndTag(_)
        ));
    }

    #[test]
    fn multiple_roots_rejected() {
        assert_eq!(
            events("<a/><b/>").unwrap_err().kind,
            XmlErrorKind::MultipleRoots
        );
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(events("hello<a/>").is_err());
        assert!(events("<a/>tail").is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert_eq!(
            events(r#"<a x="1" x="2"/>"#).unwrap_err().kind,
            XmlErrorKind::DuplicateAttribute("x".into())
        );
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "<a",
            "<a x>",
            "<a x=>",
            "<a x=1>",
            "<a x=\"1>",
            "<1a/>",
            "<a>&bogus;</a>",
            "<a>&#xZZ;</a>",
            "<a>&unterminated</a>",
            "<!-- never closed",
            "<a><![CDATA[x</a>",
        ] {
            assert!(events(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn error_positions() {
        let err = events("<a></b>").unwrap_err();
        assert!(err.to_string().contains("mismatched end tag"));
        assert!(err.pos > 0);
    }

    #[test]
    fn namespaced_names_pass_through() {
        let ev = events("<ns:a ns:x=\"1\"><ns:b/></ns:a>").unwrap();
        assert!(matches!(&ev[0], Event::Start { name, .. } if name == "ns:a"));
    }

    #[test]
    fn depth_limit_enforced() {
        let limits = ParserLimits {
            max_depth: 4,
            ..ParserLimits::default()
        };
        let ok = "<a><a><a><a/></a></a></a>";
        assert!(events_limited(ok, limits).is_ok());
        let deep = "<a><a><a><a><a/></a></a></a></a>";
        let err = events_limited(deep, limits).unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::DepthLimitExceeded(4));
        assert!(err.is_limit());
    }

    #[test]
    fn document_size_limit_enforced() {
        let limits = ParserLimits {
            max_document_bytes: 16,
            ..ParserLimits::default()
        };
        assert!(events_limited("<a/>", limits).is_ok());
        let err = events_limited("<a>0123456789012345</a>", limits).unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::DocumentTooLarge(16));
    }

    #[test]
    fn attribute_limits_enforced() {
        let limits = ParserLimits {
            max_attributes: 2,
            max_attribute_value_len: 4,
            ..ParserLimits::default()
        };
        assert!(events_limited(r#"<a x="1" y="2"/>"#, limits).is_ok());
        assert_eq!(
            events_limited(r#"<a x="1" y="2" z="3"/>"#, limits)
                .unwrap_err()
                .kind,
            XmlErrorKind::TooManyAttributes(2)
        );
        assert_eq!(
            events_limited(r#"<a x="12345"/>"#, limits)
                .unwrap_err()
                .kind,
            XmlErrorKind::AttributeValueTooLong(4)
        );
    }

    #[test]
    fn name_length_limit_enforced() {
        let limits = ParserLimits {
            max_name_len: 8,
            ..ParserLimits::default()
        };
        assert!(events_limited("<abcdefgh/>", limits).is_ok());
        assert_eq!(
            events_limited("<abcdefghi/>", limits).unwrap_err().kind,
            XmlErrorKind::NameTooLong(8)
        );
    }

    #[test]
    fn entity_expansion_budget_enforced() {
        let limits = ParserLimits {
            max_entity_expansions: 3,
            ..ParserLimits::default()
        };
        assert!(events_limited("<a>&amp;&lt;&gt;</a>", limits).is_ok());
        // Budget is per document, across text runs and attribute values.
        let err = events_limited(r#"<a v="&amp;&amp;">&amp;&amp;</a>"#, limits).unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::EntityExpansionLimit(3));
    }

    #[test]
    fn limit_errors_carry_in_bounds_positions() {
        let limits = ParserLimits::strict();
        let mut deep = String::new();
        for _ in 0..100 {
            deep.push_str("<d>");
        }
        let err = events_limited(&deep, limits).unwrap_err();
        assert!(err.pos <= deep.len());
        assert!(err.is_limit());
    }
}
