//! Uniform document access for the matching pipeline, plus the tree-free
//! streaming document store.
//!
//! Every matching algorithm in the workspace consumes a parsed document
//! through one of two lenses: root-to-leaf paths (the predicate engine and
//! Index-Filter) or start/end element events (YFilter and XFilter). Both
//! lenses are captured by [`DocAccess`], which [`Document`](crate::Document)
//! implements over its pointer tree and [`PathDoc`] implements over a flat
//! pre-order element arena built in a single SAX pass — no child vectors,
//! no tree navigation, and the leaf paths recorded as they close.
//!
//! The streaming store retains, per element: tag, attributes, accumulated
//! character data, 1-based child index (the paper's structure-tuple
//! component `m_k`), and depth. That is exactly what publication encoding,
//! inline and selection-postponed attribute checks, and nested-path
//! combination need — attribute re-checks after occurrence determination
//! look values up by `NodeId`, which stays valid because the arena is
//! complete by the time matching starts. Matching runs after the parse
//! pass finishes (not per-leaf-close) because mixed content can extend an
//! *ancestor's* text after a leaf closes (`<a><b/>tail</a>`), and `text()`
//! filters must observe the final value.

use crate::limits::ParserLimits;
use crate::reader::{Event, Reader, XmlError, XmlErrorKind};
use crate::tree::{Document, Element, NodeId, TreeEvent};

/// Read access to a parsed document, independent of its storage layout.
///
/// Implementations expose the two traversals the filtering algorithms
/// need — leaf paths and element events — plus by-id element access for
/// attribute/text lookups during predicate evaluation and postponed
/// checks. `NodeId`s are pre-order indices in both implementations, so
/// node identity comparisons (nested-path branch agreement) behave the
/// same through either.
pub trait DocAccess {
    /// True if the document has no elements.
    fn is_empty(&self) -> bool;

    /// Number of elements.
    fn node_count(&self) -> usize;

    /// Element record by id. For streaming stores the `children` vector is
    /// always empty — consumers of this trait must not rely on it.
    fn element(&self, id: NodeId) -> &Element;

    /// Invokes `f` for each root-to-leaf path (node ids from the root down
    /// to a leaf). The slice is only valid for the duration of the call.
    fn for_each_leaf_path<F: FnMut(&[NodeId])>(&self, f: F);

    /// Replays the document as start/end element events in document order.
    fn for_each_event<'a, F: FnMut(TreeEvent<'a>)>(&'a self, f: F);

    /// Element tag by id.
    fn tag(&self, id: NodeId) -> &str {
        &self.element(id).tag
    }

    /// The value an attribute/content filter named `name` tests on element
    /// `id` (see [`Element::value_of`]).
    fn value_of(&self, id: NodeId, name: &str) -> Option<&str> {
        self.element(id).value_of(name)
    }
}

impl DocAccess for Document {
    fn is_empty(&self) -> bool {
        Document::is_empty(self)
    }

    fn node_count(&self) -> usize {
        self.len()
    }

    fn element(&self, id: NodeId) -> &Element {
        self.node(id)
    }

    fn for_each_leaf_path<F: FnMut(&[NodeId])>(&self, f: F) {
        Document::for_each_leaf_path(self, f)
    }

    fn for_each_event<'a, F: FnMut(TreeEvent<'a>)>(&'a self, f: F) {
        Document::for_each_event(self, f)
    }
}

/// A document parsed for matching only: flat pre-order element arena plus
/// the root-to-leaf path list, built in one SAX pass with no tree links.
///
/// `NodeId`s are pre-order indices (identical numbering to
/// [`Document::parse`] on the same bytes), so match results and nested
/// branch-node identities agree exactly with the tree path.
///
/// ```
/// use pxf_xml::{DocAccess, PathDoc};
///
/// let doc = PathDoc::parse(b"<a><b><c/></b><b/></a>").unwrap();
/// let mut paths = Vec::new();
/// doc.for_each_leaf_path(|p| {
///     paths.push(p.iter().map(|&n| doc.tag(n).to_string()).collect::<Vec<_>>());
/// });
/// assert_eq!(paths, vec![vec!["a", "b", "c"], vec!["a", "b"]]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathDoc {
    /// Elements in pre-order. `children` is left empty (an empty `Vec`
    /// does not allocate); parent/child_index/depth are filled in.
    nodes: Vec<Element>,
    /// Flattened root-to-leaf paths, in document order.
    paths: Vec<NodeId>,
    /// End offset (exclusive) of each path within `paths`.
    path_ends: Vec<u32>,
}

impl PathDoc {
    /// Parses a document directly into path form — a single pass over the
    /// SAX events, no `Document` tree allocation. Uses default
    /// [`ParserLimits`].
    pub fn parse(bytes: &[u8]) -> Result<PathDoc, XmlError> {
        PathDoc::parse_with_limits(bytes, ParserLimits::default())
    }

    /// Parses into path form, enforcing a resource budget.
    pub fn parse_with_limits(bytes: &[u8], limits: ParserLimits) -> Result<PathDoc, XmlError> {
        let mut reader = Reader::with_limits(bytes, limits);
        let mut nodes: Vec<Element> = Vec::new();
        let mut paths: Vec<NodeId> = Vec::new();
        let mut path_ends: Vec<u32> = Vec::new();
        // Open elements (root-to-current), with each one's child count so
        // far — the count both assigns 1-based child indices and marks
        // leaves (count still 0 at close).
        let mut stack: Vec<NodeId> = Vec::new();
        let mut child_counts: Vec<u32> = Vec::new();
        loop {
            match reader.next_event()? {
                Event::Start {
                    name,
                    attributes,
                    self_closing,
                } => {
                    let id = nodes.len() as NodeId;
                    let (parent, child_index) = match stack.last() {
                        Some(&p) => {
                            let count = child_counts.last_mut().expect("stack in sync");
                            *count += 1;
                            (Some(p), *count)
                        }
                        None => (None, 1),
                    };
                    nodes.push(Element {
                        tag: name,
                        attrs: attributes,
                        text: String::new(),
                        parent,
                        children: Vec::new(),
                        child_index,
                        depth: stack.len() as u32 + 1,
                    });
                    if self_closing {
                        paths.extend_from_slice(&stack);
                        paths.push(id);
                        path_ends.push(paths.len() as u32);
                    } else {
                        stack.push(id);
                        child_counts.push(0);
                    }
                }
                Event::End { .. } => {
                    let id = stack.pop().expect("reader guarantees balance");
                    let children = child_counts.pop().expect("stack in sync");
                    if children == 0 {
                        paths.extend_from_slice(&stack);
                        paths.push(id);
                        path_ends.push(paths.len() as u32);
                    }
                }
                Event::Text(t) => {
                    if let Some(&top) = stack.last() {
                        nodes[top as usize].text.push_str(&t);
                    }
                }
                Event::Eof => break,
            }
        }
        if nodes.is_empty() {
            return Err(XmlError::new(bytes.len(), XmlErrorKind::EmptyDocument));
        }
        Ok(PathDoc {
            nodes,
            paths,
            path_ends,
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document has no elements (never produced by `parse`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Element record by pre-order id.
    pub fn node(&self, id: NodeId) -> &Element {
        &self.nodes[id as usize]
    }

    /// Number of root-to-leaf paths.
    pub fn leaf_count(&self) -> usize {
        self.path_ends.len()
    }
}

impl DocAccess for PathDoc {
    fn is_empty(&self) -> bool {
        PathDoc::is_empty(self)
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn element(&self, id: NodeId) -> &Element {
        &self.nodes[id as usize]
    }

    fn for_each_leaf_path<F: FnMut(&[NodeId])>(&self, mut f: F) {
        let mut start = 0usize;
        for &end in &self.path_ends {
            f(&self.paths[start..end as usize]);
            start = end as usize;
        }
    }

    fn for_each_event<'a, F: FnMut(TreeEvent<'a>)>(&'a self, mut f: F) {
        // Reconstruct the event stream from pre-order + depth: before a
        // node at depth d starts, every open node at depth ≥ d ends.
        let mut open: Vec<NodeId> = Vec::new();
        for (i, e) in self.nodes.iter().enumerate() {
            while open.len() as u32 >= e.depth {
                let id = open.pop().expect("non-empty");
                f(TreeEvent::End(id, &self.nodes[id as usize]));
            }
            let id = i as NodeId;
            f(TreeEvent::Start(id, e));
            open.push(id);
        }
        while let Some(id) = open.pop() {
            f(TreeEvent::End(id, &self.nodes[id as usize]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preorder_ids_match_document_parse() {
        let src = br#"<a x="1"><b><c/><d/></b><b>text</b></a>"#;
        let tree = Document::parse(src).unwrap();
        let flat = PathDoc::parse(src).unwrap();
        assert_eq!(tree.len(), flat.len());
        for id in 0..tree.len() as NodeId {
            let (t, f) = (tree.node(id), flat.node(id));
            assert_eq!(t.tag, f.tag);
            assert_eq!(t.attrs, f.attrs);
            assert_eq!(t.text, f.text);
            assert_eq!(t.parent, f.parent);
            assert_eq!(t.child_index, f.child_index);
            assert_eq!(t.depth, f.depth);
        }
    }

    #[test]
    fn leaf_paths_match_document_parse() {
        for src in [
            "<a/>",
            "<a><b/></a>",
            "<a><b><c/><d/></b><b><c/></b></a>",
            "<a>leaf text only</a>",
            "<a><b/>tail<c><d/></c></a>",
        ] {
            let tree = Document::parse(src.as_bytes()).unwrap();
            let flat = PathDoc::parse(src.as_bytes()).unwrap();
            let mut tree_paths = Vec::new();
            tree.for_each_leaf_path(|p| tree_paths.push(p.to_vec()));
            let mut flat_paths = Vec::new();
            DocAccess::for_each_leaf_path(&flat, |p| flat_paths.push(p.to_vec()));
            assert_eq!(tree_paths, flat_paths, "{src}");
            assert_eq!(flat.leaf_count(), tree.leaf_count());
        }
    }

    #[test]
    fn events_match_document_parse() {
        let src = b"<a><b><c/></b><d/>tail</a>";
        let tree = Document::parse(src).unwrap();
        let flat = PathDoc::parse(src).unwrap();
        let mut tree_events = Vec::new();
        tree.for_each_event(|ev| {
            tree_events.push(match ev {
                TreeEvent::Start(id, e) => (true, id, e.tag.clone()),
                TreeEvent::End(id, e) => (false, id, e.tag.clone()),
            })
        });
        let mut flat_events = Vec::new();
        DocAccess::for_each_event(&flat, |ev| {
            flat_events.push(match ev {
                TreeEvent::Start(id, e) => (true, id, e.tag.clone()),
                TreeEvent::End(id, e) => (false, id, e.tag.clone()),
            })
        });
        assert_eq!(tree_events, flat_events);
    }

    #[test]
    fn mixed_content_text_is_complete() {
        // The ancestor's text finishes after its first leaf closes; the
        // recorded element must still hold the full concatenation.
        let flat = PathDoc::parse(b"<a>one<b/>two</a>").unwrap();
        assert_eq!(flat.node(0).text, "onetwo");
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(PathDoc::parse(b"<a><b></a>").is_err());
        assert!(PathDoc::parse(b"").is_err());
        assert!(PathDoc::parse(b"   ").is_err());
        assert!(PathDoc::parse(b"<a/><b/>").is_err());
    }
}
