//! Uniform document access for the matching pipeline, plus the tree-free
//! streaming document store.
//!
//! Every matching algorithm in the workspace consumes a parsed document
//! through one of two lenses: root-to-leaf paths (the predicate engine and
//! Index-Filter) or start/end element events (YFilter and XFilter). Both
//! lenses are captured by [`DocAccess`], which [`Document`](crate::Document)
//! implements over its pointer tree and [`PathDoc`] implements over a flat
//! pre-order element arena built in a single SAX pass — no child vectors,
//! no tree navigation, and the leaf paths recorded as they close.
//!
//! The streaming store retains, per element: tag, attributes, accumulated
//! character data, 1-based child index (the paper's structure-tuple
//! component `m_k`), and depth. That is exactly what publication encoding,
//! inline and selection-postponed attribute checks, and nested-path
//! combination need — attribute re-checks after occurrence determination
//! look values up by `NodeId`, which stays valid because the arena is
//! complete by the time matching starts. Matching runs after the parse
//! pass finishes (not per-leaf-close) because mixed content can extend an
//! *ancestor's* text after a leaf closes (`<a><b/>tail</a>`), and `text()`
//! filters must observe the final value.

use crate::limits::ParserLimits;
use crate::reader::{Event, Reader, XmlError, XmlErrorKind};
use crate::tree::{Document, Element, NodeId, TreeEvent};

/// Enter/leave callbacks for a single pre-order traversal of a document.
///
/// This is the traversal shape behind incremental (prefix-sharing)
/// stage-1 evaluation: `enter` is invoked exactly once per element in
/// document order — with `is_leaf` precomputed so leaf-only work (e.g.
/// path-length predicates) can run inside the same pass — and `leave` is
/// invoked when the element closes, in reverse order of the open stack.
/// Between an element's `enter` and its `leave`, the elements entered but
/// not yet left form exactly the root-to-element path.
pub trait ElementVisitor {
    /// Called when an element opens. `is_leaf` is true iff the element has
    /// no child elements (its `enter` is immediately followed by its
    /// `leave`).
    fn enter(&mut self, id: NodeId, is_leaf: bool);
    /// Called when an element closes (all descendants already left).
    fn leave(&mut self, id: NodeId);
}

/// Read access to a parsed document, independent of its storage layout.
///
/// Implementations expose the two traversals the filtering algorithms
/// need — leaf paths and element events — plus by-id element access for
/// attribute/text lookups during predicate evaluation and postponed
/// checks. `NodeId`s are pre-order indices in both implementations, so
/// node identity comparisons (nested-path branch agreement) behave the
/// same through either.
pub trait DocAccess {
    /// True if the document has no elements.
    fn is_empty(&self) -> bool;

    /// Number of elements.
    fn node_count(&self) -> usize;

    /// Element record by id. For streaming stores the `children` vector is
    /// always empty — consumers of this trait must not rely on it.
    fn element(&self, id: NodeId) -> &Element;

    /// Invokes `f` for each root-to-leaf path (node ids from the root down
    /// to a leaf). The slice is only valid for the duration of the call.
    fn for_each_leaf_path<F: FnMut(&[NodeId])>(&self, f: F);

    /// Replays the document as start/end element events in document order.
    fn for_each_event<'a, F: FnMut(TreeEvent<'a>)>(&'a self, f: F);

    /// Drives one pre-order enter/leave traversal (see [`ElementVisitor`]).
    ///
    /// The default derives leaf-ness from the event stream by holding each
    /// start until the next event: a start immediately followed by its own
    /// end is a leaf. Both stores override this with a direct walk.
    fn for_each_element<V: ElementVisitor>(&self, visitor: &mut V) {
        let mut pending: Option<NodeId> = None;
        self.for_each_event(|ev| match ev {
            TreeEvent::Start(id, _) => {
                if let Some(p) = pending.take() {
                    visitor.enter(p, false);
                }
                pending = Some(id);
            }
            TreeEvent::End(id, _) => {
                if pending.take() == Some(id) {
                    visitor.enter(id, true);
                }
                visitor.leave(id);
            }
        });
    }

    /// Element tag by id.
    fn tag(&self, id: NodeId) -> &str {
        &self.element(id).tag
    }

    /// The value an attribute/content filter named `name` tests on element
    /// `id` (see [`Element::value_of`]).
    fn value_of(&self, id: NodeId, name: &str) -> Option<&str> {
        self.element(id).value_of(name)
    }
}

impl DocAccess for Document {
    fn is_empty(&self) -> bool {
        Document::is_empty(self)
    }

    fn node_count(&self) -> usize {
        self.len()
    }

    fn element(&self, id: NodeId) -> &Element {
        self.node(id)
    }

    fn for_each_leaf_path<F: FnMut(&[NodeId])>(&self, f: F) {
        Document::for_each_leaf_path(self, f)
    }

    fn for_each_event<'a, F: FnMut(TreeEvent<'a>)>(&'a self, f: F) {
        Document::for_each_event(self, f)
    }

    fn for_each_element<V: ElementVisitor>(&self, visitor: &mut V) {
        if Document::is_empty(self) {
            return;
        }
        // Iterative DFS over the child vectors: (node, next child index).
        let root = self.root();
        visitor.enter(root, self.node(root).children.is_empty());
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        while let Some(&mut (id, ref mut next)) = stack.last_mut() {
            let children = &self.node(id).children;
            if *next < children.len() {
                let child = children[*next];
                *next += 1;
                visitor.enter(child, self.node(child).children.is_empty());
                stack.push((child, 0));
            } else {
                stack.pop();
                visitor.leave(id);
            }
        }
    }
}

/// A document parsed for matching only: flat pre-order element arena plus
/// the root-to-leaf path list, built in one SAX pass with no tree links.
///
/// `NodeId`s are pre-order indices (identical numbering to
/// [`Document::parse`] on the same bytes), so match results and nested
/// branch-node identities agree exactly with the tree path.
///
/// ```
/// use pxf_xml::{DocAccess, PathDoc};
///
/// let doc = PathDoc::parse(b"<a><b><c/></b><b/></a>").unwrap();
/// let mut paths = Vec::new();
/// doc.for_each_leaf_path(|p| {
///     paths.push(p.iter().map(|&n| doc.tag(n).to_string()).collect::<Vec<_>>());
/// });
/// assert_eq!(paths, vec![vec!["a", "b", "c"], vec!["a", "b"]]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathDoc {
    /// Elements in pre-order. `children` is left empty (an empty `Vec`
    /// does not allocate); parent/child_index/depth are filled in.
    nodes: Vec<Element>,
    /// Flattened root-to-leaf paths, in document order.
    paths: Vec<NodeId>,
    /// End offset (exclusive) of each path within `paths`.
    path_ends: Vec<u32>,
}

impl PathDoc {
    /// Parses a document directly into path form — a single pass over the
    /// SAX events, no `Document` tree allocation. Uses default
    /// [`ParserLimits`].
    pub fn parse(bytes: &[u8]) -> Result<PathDoc, XmlError> {
        PathDoc::parse_with_limits(bytes, ParserLimits::default())
    }

    /// Parses into path form, enforcing a resource budget.
    pub fn parse_with_limits(bytes: &[u8], limits: ParserLimits) -> Result<PathDoc, XmlError> {
        let mut reader = Reader::with_limits(bytes, limits);
        let mut nodes: Vec<Element> = Vec::new();
        let mut paths: Vec<NodeId> = Vec::new();
        let mut path_ends: Vec<u32> = Vec::new();
        // Open elements (root-to-current), with each one's child count so
        // far — the count both assigns 1-based child indices and marks
        // leaves (count still 0 at close).
        let mut stack: Vec<NodeId> = Vec::new();
        let mut child_counts: Vec<u32> = Vec::new();
        loop {
            match reader.next_event()? {
                Event::Start {
                    name,
                    attributes,
                    self_closing,
                } => {
                    let id = nodes.len() as NodeId;
                    let (parent, child_index) = match stack.last() {
                        Some(&p) => {
                            let count = child_counts.last_mut().expect("stack in sync");
                            *count += 1;
                            (Some(p), *count)
                        }
                        None => (None, 1),
                    };
                    nodes.push(Element {
                        tag: name,
                        attrs: attributes,
                        text: String::new(),
                        parent,
                        children: Vec::new(),
                        child_index,
                        depth: stack.len() as u32 + 1,
                    });
                    if self_closing {
                        paths.extend_from_slice(&stack);
                        paths.push(id);
                        path_ends.push(paths.len() as u32);
                    } else {
                        stack.push(id);
                        child_counts.push(0);
                    }
                }
                Event::End { .. } => {
                    let id = stack.pop().expect("reader guarantees balance");
                    let children = child_counts.pop().expect("stack in sync");
                    if children == 0 {
                        paths.extend_from_slice(&stack);
                        paths.push(id);
                        path_ends.push(paths.len() as u32);
                    }
                }
                Event::Text(t) => {
                    if let Some(&top) = stack.last() {
                        nodes[top as usize].text.push_str(&t);
                    }
                }
                Event::Eof => break,
            }
        }
        if nodes.is_empty() {
            return Err(XmlError::new(bytes.len(), XmlErrorKind::EmptyDocument));
        }
        Ok(PathDoc {
            nodes,
            paths,
            path_ends,
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document has no elements (never produced by `parse`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Element record by pre-order id.
    pub fn node(&self, id: NodeId) -> &Element {
        &self.nodes[id as usize]
    }

    /// Number of root-to-leaf paths.
    pub fn leaf_count(&self) -> usize {
        self.path_ends.len()
    }
}

impl DocAccess for PathDoc {
    fn is_empty(&self) -> bool {
        PathDoc::is_empty(self)
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn element(&self, id: NodeId) -> &Element {
        &self.nodes[id as usize]
    }

    fn for_each_leaf_path<F: FnMut(&[NodeId])>(&self, mut f: F) {
        let mut start = 0usize;
        for &end in &self.path_ends {
            f(&self.paths[start..end as usize]);
            start = end as usize;
        }
    }

    fn for_each_event<'a, F: FnMut(TreeEvent<'a>)>(&'a self, mut f: F) {
        // Reconstruct the event stream from pre-order + depth: before a
        // node at depth d starts, every open node at depth ≥ d ends.
        let mut open: Vec<NodeId> = Vec::new();
        for (i, e) in self.nodes.iter().enumerate() {
            while open.len() as u32 >= e.depth {
                let id = open.pop().expect("non-empty");
                f(TreeEvent::End(id, &self.nodes[id as usize]));
            }
            let id = i as NodeId;
            f(TreeEvent::Start(id, e));
            open.push(id);
        }
        while let Some(id) = open.pop() {
            f(TreeEvent::End(id, &self.nodes[id as usize]));
        }
    }

    fn for_each_element<V: ElementVisitor>(&self, visitor: &mut V) {
        // One linear scan of the pre-order arena: depth transitions mark
        // leaves (next element not deeper) and closings (next element not
        // deeper than an open ancestor).
        let mut open: Vec<NodeId> = Vec::new();
        for (i, e) in self.nodes.iter().enumerate() {
            while open.len() as u32 >= e.depth {
                visitor.leave(open.pop().expect("non-empty"));
            }
            let is_leaf = self
                .nodes
                .get(i + 1)
                .is_none_or(|next| next.depth <= e.depth);
            let id = i as NodeId;
            visitor.enter(id, is_leaf);
            open.push(id);
        }
        while let Some(id) = open.pop() {
            visitor.leave(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preorder_ids_match_document_parse() {
        let src = br#"<a x="1"><b><c/><d/></b><b>text</b></a>"#;
        let tree = Document::parse(src).unwrap();
        let flat = PathDoc::parse(src).unwrap();
        assert_eq!(tree.len(), flat.len());
        for id in 0..tree.len() as NodeId {
            let (t, f) = (tree.node(id), flat.node(id));
            assert_eq!(t.tag, f.tag);
            assert_eq!(t.attrs, f.attrs);
            assert_eq!(t.text, f.text);
            assert_eq!(t.parent, f.parent);
            assert_eq!(t.child_index, f.child_index);
            assert_eq!(t.depth, f.depth);
        }
    }

    #[test]
    fn leaf_paths_match_document_parse() {
        for src in [
            "<a/>",
            "<a><b/></a>",
            "<a><b><c/><d/></b><b><c/></b></a>",
            "<a>leaf text only</a>",
            "<a><b/>tail<c><d/></c></a>",
        ] {
            let tree = Document::parse(src.as_bytes()).unwrap();
            let flat = PathDoc::parse(src.as_bytes()).unwrap();
            let mut tree_paths = Vec::new();
            tree.for_each_leaf_path(|p| tree_paths.push(p.to_vec()));
            let mut flat_paths = Vec::new();
            DocAccess::for_each_leaf_path(&flat, |p| flat_paths.push(p.to_vec()));
            assert_eq!(tree_paths, flat_paths, "{src}");
            assert_eq!(flat.leaf_count(), tree.leaf_count());
        }
    }

    #[test]
    fn events_match_document_parse() {
        let src = b"<a><b><c/></b><d/>tail</a>";
        let tree = Document::parse(src).unwrap();
        let flat = PathDoc::parse(src).unwrap();
        let mut tree_events = Vec::new();
        tree.for_each_event(|ev| {
            tree_events.push(match ev {
                TreeEvent::Start(id, e) => (true, id, e.tag.clone()),
                TreeEvent::End(id, e) => (false, id, e.tag.clone()),
            })
        });
        let mut flat_events = Vec::new();
        DocAccess::for_each_event(&flat, |ev| {
            flat_events.push(match ev {
                TreeEvent::Start(id, e) => (true, id, e.tag.clone()),
                TreeEvent::End(id, e) => (false, id, e.tag.clone()),
            })
        });
        assert_eq!(tree_events, flat_events);
    }

    #[test]
    fn mixed_content_text_is_complete() {
        // The ancestor's text finishes after its first leaf closes; the
        // recorded element must still hold the full concatenation.
        let flat = PathDoc::parse(b"<a>one<b/>two</a>").unwrap();
        assert_eq!(flat.node(0).text, "onetwo");
    }

    /// Records enter/leave calls: (true, id, is_leaf) / (false, id, false).
    #[derive(Default)]
    struct Recorder(Vec<(bool, NodeId, bool)>);

    impl ElementVisitor for Recorder {
        fn enter(&mut self, id: NodeId, is_leaf: bool) {
            self.0.push((true, id, is_leaf));
        }
        fn leave(&mut self, id: NodeId) {
            self.0.push((false, id, false));
        }
    }

    /// Runs the default event-derived traversal for comparison against the
    /// store-specific overrides.
    fn default_traversal<D: DocAccess>(doc: &D) -> Vec<(bool, NodeId, bool)> {
        struct Shim<'d, D>(&'d D);
        impl<D: DocAccess> DocAccess for Shim<'_, D> {
            fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
            fn node_count(&self) -> usize {
                self.0.node_count()
            }
            fn element(&self, id: NodeId) -> &Element {
                self.0.element(id)
            }
            fn for_each_leaf_path<F: FnMut(&[NodeId])>(&self, f: F) {
                self.0.for_each_leaf_path(f)
            }
            fn for_each_event<'a, F: FnMut(TreeEvent<'a>)>(&'a self, f: F) {
                self.0.for_each_event(f)
            }
            // No for_each_element override: uses the trait default.
        }
        let mut rec = Recorder::default();
        Shim(doc).for_each_element(&mut rec);
        rec.0
    }

    #[test]
    fn element_traversal_agrees_across_stores_and_default() {
        for src in [
            "<a/>",
            "<a><b/></a>",
            "<a><b><c/><d/></b><b><c/></b></a>",
            "<a>leaf text only</a>",
            "<a><b/>tail<c><d/></c></a>",
            "<r><x><y><z/></y></x><x/><w><w><w/></w></w></r>",
        ] {
            let tree = Document::parse(src.as_bytes()).unwrap();
            let flat = PathDoc::parse(src.as_bytes()).unwrap();
            let mut via_tree = Recorder::default();
            DocAccess::for_each_element(&tree, &mut via_tree);
            let mut via_flat = Recorder::default();
            DocAccess::for_each_element(&flat, &mut via_flat);
            assert_eq!(via_tree.0, via_flat.0, "{src}");
            assert_eq!(via_tree.0, default_traversal(&tree), "{src}");
            assert_eq!(via_flat.0, default_traversal(&flat), "{src}");
        }
    }

    #[test]
    fn element_traversal_matches_leaf_paths() {
        // The stack of entered-not-left elements at each leaf `enter` must
        // be exactly the root-to-leaf path, in document order.
        struct PathCollector {
            stack: Vec<NodeId>,
            paths: Vec<Vec<NodeId>>,
        }
        impl ElementVisitor for PathCollector {
            fn enter(&mut self, id: NodeId, is_leaf: bool) {
                self.stack.push(id);
                if is_leaf {
                    self.paths.push(self.stack.clone());
                }
            }
            fn leave(&mut self, id: NodeId) {
                assert_eq!(self.stack.pop(), Some(id));
            }
        }
        let src = b"<a><b><c/><d/></b><b><c/></b><e/></a>";
        let doc = Document::parse(src).unwrap();
        let mut v = PathCollector {
            stack: Vec::new(),
            paths: Vec::new(),
        };
        DocAccess::for_each_element(&doc, &mut v);
        assert!(v.stack.is_empty());
        let mut expected = Vec::new();
        doc.for_each_leaf_path(|p| expected.push(p.to_vec()));
        assert_eq!(v.paths, expected);
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(PathDoc::parse(b"<a><b></a>").is_err());
        assert!(PathDoc::parse(b"").is_err());
        assert!(PathDoc::parse(b"   ").is_err());
        assert!(PathDoc::parse(b"<a/><b/>").is_err());
    }
}
