//! In-memory XML document tree with root-to-leaf path extraction.
//!
//! The filtering algorithms consume a parsed [`Document`]: the predicate
//! engine and Index-Filter walk its root-to-leaf paths, YFilter replays its
//! start/end events. Elements record their 1-based child index, which forms
//! the *structure tuples* used for nested-path matching (paper §5, Fig. 4).

use crate::limits::ParserLimits;
use crate::reader::{Attribute, Event, Reader, XmlError, XmlErrorKind};

/// Identifier of an element within its [`Document`] (index into the arena).
pub type NodeId = u32;

/// One element of a parsed document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Element name.
    pub tag: String,
    /// Attributes in document order.
    pub attrs: Vec<Attribute>,
    /// Concatenated character data directly inside this element.
    pub text: String,
    /// Parent element, `None` for the root.
    pub parent: Option<NodeId>,
    /// Child elements in document order.
    pub children: Vec<NodeId>,
    /// 1-based position among the parent's children (1 for the root). This
    /// is the `m_k` component of the paper's structure tuples.
    pub child_index: u32,
    /// 1-based depth (root = 1).
    pub depth: u32,
}

impl Element {
    /// Looks up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Returns the value a filter with this name tests: an attribute
    /// value, or — for the reserved name `text()` — the element's own
    /// character data (absent when empty, so `[text()]` is a non-empty
    /// content test).
    pub fn value_of(&self, name: &str) -> Option<&str> {
        if name == "text()" {
            (!self.text.is_empty()).then_some(self.text.as_str())
        } else {
            self.attr(name)
        }
    }
}

/// A parsed XML document as an element arena. Node 0 is the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<Element>,
}

/// Tree traversal event for [`Document::for_each_event`].
#[derive(Debug, Clone, Copy)]
pub enum TreeEvent<'a> {
    /// Entering an element (pre-order).
    Start(NodeId, &'a Element),
    /// Leaving an element (post-order).
    End(NodeId, &'a Element),
}

impl Document {
    /// Parses a document from raw bytes with default [`ParserLimits`].
    pub fn parse(bytes: &[u8]) -> Result<Document, XmlError> {
        Document::parse_with_limits(bytes, ParserLimits::default())
    }

    /// Parses a document from raw bytes, enforcing a resource budget.
    pub fn parse_with_limits(bytes: &[u8], limits: ParserLimits) -> Result<Document, XmlError> {
        let mut reader = Reader::with_limits(bytes, limits);
        let mut builder = DocumentBuilder::new();
        loop {
            match reader.next_event()? {
                Event::Start {
                    name,
                    attributes,
                    self_closing,
                } => {
                    builder.start_owned(name);
                    for a in attributes {
                        builder.attr_owned(a.name, a.value);
                    }
                    if self_closing {
                        builder.end();
                    }
                }
                Event::End { .. } => {
                    builder.end();
                }
                Event::Text(t) => {
                    builder.text(&t);
                }
                Event::Eof => break,
            }
        }
        // The reader enforces tag balance, so the only way `finish` can
        // fail here is a document with no elements at all.
        builder
            .finish()
            .map_err(|_| XmlError::new(bytes.len(), XmlErrorKind::EmptyDocument))
    }

    /// The root element id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Access an element by id.
    pub fn node(&self, id: NodeId) -> &Element {
        &self.nodes[id as usize]
    }

    /// Number of elements (tags) in the document.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document has no elements (never produced by `parse`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates all elements in document (pre-)order.
    pub fn elements(&self) -> impl Iterator<Item = (NodeId, &Element)> {
        self.nodes.iter().enumerate().map(|(i, e)| (i as NodeId, e))
    }

    /// Maximum element depth (root = 1); 0 for an empty document.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|e| e.depth).max().unwrap_or(0)
    }

    /// Invokes `f` for each root-to-leaf path, passing the node ids from the
    /// root down to a leaf. The slice is only valid for the duration of the
    /// call (the buffer is reused — no per-path allocation).
    pub fn for_each_leaf_path<F: FnMut(&[NodeId])>(&self, mut f: F) {
        if self.nodes.is_empty() {
            return;
        }
        let mut path: Vec<NodeId> = Vec::with_capacity(self.max_depth() as usize);
        // Iterative DFS: (node, next child index to visit).
        let mut stack: Vec<(NodeId, usize)> = vec![(self.root(), 0)];
        path.push(self.root());
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let children = &self.nodes[node as usize].children;
            if children.is_empty() && *next == 0 {
                *next = 1;
                f(&path);
                continue;
            }
            if *next < children.len() {
                let child = children[*next];
                *next += 1;
                stack.push((child, 0));
                path.push(child);
            } else {
                stack.pop();
                path.pop();
            }
        }
    }

    /// Collects all root-to-leaf paths. Prefer [`Self::for_each_leaf_path`]
    /// in hot code.
    pub fn leaf_paths(&self) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        self.for_each_leaf_path(|p| out.push(p.to_vec()));
        out
    }

    /// Number of root-to-leaf paths (= number of leaves).
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|e| e.children.is_empty()).count()
    }

    /// Replays the document as start/end tree events in document order.
    pub fn for_each_event<'a, F: FnMut(TreeEvent<'a>)>(&'a self, mut f: F) {
        enum Item {
            Enter(NodeId),
            Leave(NodeId),
        }
        let mut stack = vec![Item::Enter(self.root())];
        while let Some(item) = stack.pop() {
            match item {
                Item::Enter(id) => {
                    let e = self.node(id);
                    f(TreeEvent::Start(id, e));
                    stack.push(Item::Leave(id));
                    for &c in e.children.iter().rev() {
                        stack.push(Item::Enter(c));
                    }
                }
                Item::Leave(id) => f(TreeEvent::End(id, self.node(id))),
            }
        }
    }

    /// Serializes the document back to XML text (with entity escaping).
    pub fn to_xml(&self) -> String {
        let mut out = String::with_capacity(self.nodes.len() * 16);
        self.write_node(self.root(), &mut out);
        out
    }

    fn write_node(&self, id: NodeId, out: &mut String) {
        let e = self.node(id);
        out.push('<');
        out.push_str(&e.tag);
        for a in &e.attrs {
            out.push(' ');
            out.push_str(&a.name);
            out.push_str("=\"");
            escape_into(&a.value, out);
            out.push('"');
        }
        if e.children.is_empty() && e.text.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        if !e.text.is_empty() {
            escape_into(&e.text, out);
        }
        for &c in &e.children {
            self.write_node(c, out);
        }
        out.push_str("</");
        out.push_str(&e.tag);
        out.push('>');
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
}

/// Incremental builder for [`Document`], used by the parser and by the
/// workload generator.
///
/// ```
/// use pxf_xml::DocumentBuilder;
/// let mut b = DocumentBuilder::new();
/// b.start("a");
/// b.attr("x", "1");
/// b.start("b");
/// b.end();
/// b.end();
/// let doc = b.finish().unwrap();
/// assert_eq!(doc.len(), 2);
/// assert_eq!(doc.node(0).tag, "a");
/// ```
#[derive(Debug, Default)]
pub struct DocumentBuilder {
    nodes: Vec<Element>,
    stack: Vec<NodeId>,
    finished_root: bool,
}

impl DocumentBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new element.
    pub fn start(&mut self, tag: &str) -> &mut Self {
        self.start_owned(tag.to_string())
    }

    fn start_owned(&mut self, tag: String) -> &mut Self {
        debug_assert!(
            !(self.stack.is_empty() && self.finished_root),
            "document may only have one root element"
        );
        let id = self.nodes.len() as NodeId;
        let (parent, child_index, depth) = match self.stack.last() {
            Some(&p) => {
                let parent = &mut self.nodes[p as usize];
                parent.children.push(id);
                let child_index = parent.children.len() as u32;
                let depth = parent.depth + 1;
                (Some(p), child_index, depth)
            }
            None => (None, 1, 1),
        };
        self.nodes.push(Element {
            tag,
            attrs: Vec::new(),
            text: String::new(),
            parent,
            children: Vec::new(),
            child_index,
            depth,
        });
        self.stack.push(id);
        self
    }

    /// Adds an attribute to the currently open element.
    pub fn attr(&mut self, name: &str, value: &str) -> &mut Self {
        self.attr_owned(name.to_string(), value.to_string())
    }

    fn attr_owned(&mut self, name: String, value: String) -> &mut Self {
        let id = *self.stack.last().expect("attr() with no open element");
        self.nodes[id as usize]
            .attrs
            .push(Attribute { name, value });
        self
    }

    /// Appends character data to the currently open element.
    pub fn text(&mut self, text: &str) -> &mut Self {
        let id = *self.stack.last().expect("text() with no open element");
        self.nodes[id as usize].text.push_str(text);
        self
    }

    /// Closes the currently open element.
    pub fn end(&mut self) -> &mut Self {
        self.stack.pop().expect("end() with no open element");
        if self.stack.is_empty() {
            self.finished_root = true;
        }
        self
    }

    /// Finishes the document; errors if elements remain open or nothing was
    /// built.
    pub fn finish(self) -> Result<Document, String> {
        if !self.stack.is_empty() {
            return Err(format!("{} element(s) left open", self.stack.len()));
        }
        if self.nodes.is_empty() {
            return Err("empty document".to_string());
        }
        Ok(Document { nodes: self.nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(src: &str) -> Document {
        Document::parse(src.as_bytes()).unwrap()
    }

    #[test]
    fn parse_builds_tree() {
        let d = doc("<a x=\"1\"><b><c/></b><b/></a>");
        assert_eq!(d.len(), 4);
        let root = d.node(d.root());
        assert_eq!(root.tag, "a");
        assert_eq!(root.attr("x"), Some("1"));
        assert_eq!(root.children.len(), 2);
        let b1 = d.node(root.children[0]);
        assert_eq!(b1.child_index, 1);
        assert_eq!(b1.depth, 2);
        let b2 = d.node(root.children[1]);
        assert_eq!(b2.child_index, 2);
        let c = d.node(b1.children[0]);
        assert_eq!(c.depth, 3);
        assert_eq!(c.parent, Some(root.children[0]));
    }

    #[test]
    fn leaf_paths_enumerated() {
        // Paper Fig. 4-style tree.
        let d = doc("<a><b><c/><d/></b><b><c/></b></a>");
        let paths = d.leaf_paths();
        assert_eq!(paths.len(), 3);
        let tags: Vec<Vec<&str>> = paths
            .iter()
            .map(|p| p.iter().map(|&n| d.node(n).tag.as_str()).collect())
            .collect();
        assert_eq!(tags[0], ["a", "b", "c"]);
        assert_eq!(tags[1], ["a", "b", "d"]);
        assert_eq!(tags[2], ["a", "b", "c"]);
        assert_eq!(d.leaf_count(), 3);
    }

    #[test]
    fn structure_tuples_from_child_indices() {
        let d = doc("<a><b><c/><d/></b><b><c/></b></a>");
        let paths = d.leaf_paths();
        let tuple =
            |p: &Vec<NodeId>| -> Vec<u32> { p.iter().map(|&n| d.node(n).child_index).collect() };
        assert_eq!(tuple(&paths[0]), [1, 1, 1]);
        assert_eq!(tuple(&paths[1]), [1, 1, 2]);
        assert_eq!(tuple(&paths[2]), [1, 2, 1]);
    }

    #[test]
    fn single_node_document() {
        let d = doc("<only/>");
        assert_eq!(d.len(), 1);
        assert_eq!(d.leaf_paths(), vec![vec![0]]);
        assert_eq!(d.max_depth(), 1);
    }

    #[test]
    fn events_are_balanced() {
        let d = doc("<a><b/><c><d/></c></a>");
        let mut depth = 0i32;
        let mut max_depth = 0;
        let mut starts = 0;
        d.for_each_event(|ev| match ev {
            TreeEvent::Start(..) => {
                depth += 1;
                starts += 1;
                max_depth = max_depth.max(depth);
            }
            TreeEvent::End(..) => depth -= 1,
        });
        assert_eq!(depth, 0);
        assert_eq!(starts, 4);
        assert_eq!(max_depth, 3);
    }

    #[test]
    fn event_order_is_document_order() {
        let d = doc("<a><b/><c/></a>");
        let mut order = Vec::new();
        d.for_each_event(|ev| {
            if let TreeEvent::Start(_, e) = ev {
                order.push(e.tag.clone());
            }
        });
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn serialization_roundtrip() {
        let src = r#"<a x="1&amp;2"><b>hello &lt;world&gt;</b><c/></a>"#;
        let d = doc(src);
        let out = d.to_xml();
        let d2 = Document::parse(out.as_bytes()).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn builder_validates() {
        let mut b = DocumentBuilder::new();
        b.start("a");
        assert!(b.finish().is_err());
        assert!(DocumentBuilder::new().finish().is_err());
    }

    #[test]
    fn text_accumulates() {
        let d = doc("<a>one<b/>two</a>");
        assert_eq!(d.node(0).text, "onetwo");
    }
}
