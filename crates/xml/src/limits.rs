//! Per-document resource limits for hostile-input hardening.
//!
//! A production filtering broker cannot assume cooperative publishers:
//! documents arrive truncated, malformed, and adversarial (depth bombs,
//! entity floods, megabyte attribute values). [`ParserLimits`] bounds the
//! resources a single document may consume during parsing; every limit
//! violation surfaces as a structured
//! [`XmlErrorKind`](crate::XmlErrorKind) carrying the byte offset at
//! which the budget was exhausted, so the ingest pipeline can reject the
//! document, report it, and move on to the next one.

/// Resource bounds enforced while parsing one document.
///
/// The defaults are deliberately generous — far above anything the
/// workload generators produce — but finite, so a single hostile document
/// can neither exhaust memory nor stall a worker. Construct stricter
/// budgets with struct-update syntax:
///
/// ```
/// use pxf_xml::ParserLimits;
/// let limits = ParserLimits { max_depth: 32, ..ParserLimits::default() };
/// assert!(limits.max_depth < ParserLimits::default().max_depth);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParserLimits {
    /// Maximum element nesting depth (root = 1).
    pub max_depth: usize,
    /// Maximum size of one document in bytes.
    pub max_document_bytes: usize,
    /// Maximum number of attributes on one element.
    pub max_attributes: usize,
    /// Maximum byte length of one (undecoded) attribute value.
    pub max_attribute_value_len: usize,
    /// Maximum byte length of an element or attribute name.
    pub max_name_len: usize,
    /// Maximum number of entity and character references decoded per
    /// document (bounds total entity-expansion work).
    pub max_entity_expansions: usize,
}

impl Default for ParserLimits {
    fn default() -> Self {
        ParserLimits {
            max_depth: 256,
            max_document_bytes: 64 << 20,
            max_attributes: 256,
            max_attribute_value_len: 1 << 20,
            max_name_len: 1 << 12,
            max_entity_expansions: 1 << 20,
        }
    }
}

impl ParserLimits {
    /// A strict budget suitable for untrusted streams: small documents,
    /// shallow nesting, short names and values.
    pub fn strict() -> Self {
        ParserLimits {
            max_depth: 64,
            max_document_bytes: 1 << 20,
            max_attributes: 32,
            max_attribute_value_len: 1 << 12,
            max_name_len: 256,
            max_entity_expansions: 1 << 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_is_tighter_than_default() {
        let d = ParserLimits::default();
        let s = ParserLimits::strict();
        assert!(s.max_depth < d.max_depth);
        assert!(s.max_document_bytes < d.max_document_bytes);
        assert!(s.max_attributes < d.max_attributes);
        assert!(s.max_attribute_value_len < d.max_attribute_value_len);
        assert!(s.max_name_len < d.max_name_len);
        assert!(s.max_entity_expansions < d.max_entity_expansions);
    }
}
