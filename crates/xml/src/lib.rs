//! Streaming XML parsing and document trees for XML/XPath filtering.
//!
//! This crate is the document substrate of the `pxf` engine (reproduction of
//! *Predicate-based Filtering of XPath Expressions*, Hou & Jacobsen). It
//! provides:
//!
//! * [`Reader`] — a hand-rolled SAX-style pull parser (events, attributes,
//!   CDATA, comments, entities, DOCTYPE skipping, well-formedness checks),
//! * [`Document`] / [`DocumentBuilder`] — an element-arena tree recording
//!   1-based child indices (the paper's *structure tuples*, §5) and depths,
//! * root-to-leaf path extraction ([`Document::for_each_leaf_path`]) — the
//!   paper decomposes every document into its set of document paths (§3.3),
//! * [`Interner`] — name interning so engines work on integer [`Symbol`]s,
//! * [`DocAccess`] / [`PathDoc`] — layout-independent document access and a
//!   tree-free store built in one SAX pass for the streaming match path,
//! * [`ParserLimits`] / [`XmlErrorKind`] — per-document resource budgets
//!   and a structured error taxonomy for hostile-input hardening,
//! * [`DocumentStream`] — boundary scanning over concatenated documents
//!   with malformed-document resync and a consecutive-failure cap.
//!
//! # Example
//!
//! ```
//! use pxf_xml::Document;
//!
//! let doc = Document::parse(b"<a><b><c/></b><b/></a>").unwrap();
//! let mut paths = Vec::new();
//! doc.for_each_leaf_path(|p| {
//!     paths.push(p.iter().map(|&n| doc.node(n).tag.clone()).collect::<Vec<_>>());
//! });
//! assert_eq!(paths, vec![vec!["a", "b", "c"], vec!["a", "b"]]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod limits;
mod name;
mod reader;
mod stream;
mod tree;

pub use access::{DocAccess, ElementVisitor, PathDoc};
pub use limits::ParserLimits;
pub use name::{Interner, Symbol};
pub use reader::{Attribute, Event, Reader, XmlError, XmlErrorKind};
pub use stream::{DocumentStream, PollDoc, DEFAULT_MAX_CONSECUTIVE_FAILURES};
pub use tree::{Document, DocumentBuilder, Element, NodeId, TreeEvent};
