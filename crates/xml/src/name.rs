//! String interning for tag and attribute names.
//!
//! The filtering engines operate on integer [`Symbol`]s instead of strings in
//! all hot paths; the [`Interner`] maps names to symbols once per distinct
//! name.

use std::collections::HashMap;

/// An interned name. Symbols are dense (`0..interner.len()`), so they can
/// index side tables directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Sentinel for names that are not interned (e.g. document tags no
    /// subscription mentions). Safe to use in lookups — it never equals a
    /// real symbol and indexes past every dense table.
    pub const UNKNOWN: Symbol = Symbol(u32::MAX);

    /// The symbol as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this is the [`Symbol::UNKNOWN`] sentinel.
    #[inline]
    pub fn is_unknown(self) -> bool {
        self == Symbol::UNKNOWN
    }
}

/// Bidirectional name ↔ [`Symbol`] table.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Box<str>, Symbol>,
    names: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a name, returning its symbol (allocating one if new).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a name without interning it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// Resolves a symbol back to its name.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.intern("a"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn symbols_are_dense() {
        let mut i = Interner::new();
        for (n, name) in ["x", "y", "z"].iter().enumerate() {
            assert_eq!(i.intern(name).index(), n);
        }
    }

    #[test]
    fn resolve_and_get() {
        let mut i = Interner::new();
        let s = i.intern("hedline");
        assert_eq!(i.resolve(s), "hedline");
        assert_eq!(i.get("hedline"), Some(s));
        assert_eq!(i.get("missing"), None);
    }
}
