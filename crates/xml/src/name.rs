//! String interning for tag and attribute names.
//!
//! The filtering engines operate on integer [`Symbol`]s instead of strings in
//! all hot paths; the [`Interner`] maps names to symbols once per distinct
//! name.

use std::collections::HashMap;
use std::sync::Arc;

/// An interned name. Symbols are dense (`0..interner.len()`), so they can
/// index side tables directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Sentinel for names that are not interned (e.g. document tags no
    /// subscription mentions). Safe to use in lookups — it never equals a
    /// real symbol and indexes past every dense table.
    pub const UNKNOWN: Symbol = Symbol(u32::MAX);

    /// The symbol as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this is the [`Symbol::UNKNOWN`] sentinel.
    #[inline]
    pub fn is_unknown(self) -> bool {
        self == Symbol::UNKNOWN
    }
}

/// Bidirectional name ↔ [`Symbol`] table.
///
/// Each distinct name is stored once: the map key and the resolve table
/// share one `Arc<str>` (a previous revision cloned a `Box<str>` into
/// both, duplicating every name's bytes).
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Arc<str>, Symbol>,
    names: Vec<Arc<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a name, returning its symbol (allocating one if new).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        let shared: Arc<str> = name.into();
        self.names.push(Arc::clone(&shared));
        self.map.insert(shared, sym);
        sym
    }

    /// Looks up a name without interning it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// Resolves a symbol back to its name.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.intern("a"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn symbols_are_dense() {
        let mut i = Interner::new();
        for (n, name) in ["x", "y", "z"].iter().enumerate() {
            assert_eq!(i.intern(name).index(), n);
        }
    }

    #[test]
    fn heavy_interning_keeps_len_and_resolve_in_agreement() {
        let mut i = Interner::new();
        let mut syms = Vec::new();
        // Many distinct names, each re-interned several times.
        for round in 0..3 {
            for n in 0..2000 {
                let name = format!("tag-{n}");
                let sym = i.intern(&name);
                if round == 0 {
                    syms.push(sym);
                } else {
                    assert_eq!(sym, syms[n]);
                }
            }
        }
        assert_eq!(i.len(), 2000);
        for (n, &sym) in syms.iter().enumerate() {
            assert_eq!(i.resolve(sym), format!("tag-{n}"));
            assert_eq!(i.get(&format!("tag-{n}")), Some(sym));
        }
        // Map and resolve table share storage: one string allocation per
        // distinct name.
        for (name, &sym) in [("tag-0", &syms[0]), ("tag-1999", &syms[1999])] {
            let resolved = i.resolve(sym);
            assert_eq!(resolved, name);
        }
    }

    #[test]
    fn resolve_and_get() {
        let mut i = Interner::new();
        let s = i.intern("hedline");
        assert_eq!(i.resolve(s), "hedline");
        assert_eq!(i.get("hedline"), Some(s));
        assert_eq!(i.get("missing"), None);
    }
}
