//! Streaming over concatenated XML documents, with malformed-input
//! recovery.
//!
//! A filtering broker ingests an unbounded stream of documents — often
//! concatenated back-to-back or separated by whitespace on one connection,
//! and not always well-formed. [`DocumentStream`] incrementally scans such
//! a byte stream, finds document boundaries (tracking element depth
//! through comments, CDATA, processing instructions, DOCTYPE declarations,
//! and quoted attribute values), and yields each complete document parsed.
//!
//! A malformed document does **not** terminate the stream: the error is
//! reported with its stream-absolute byte offset and the scanner resyncs
//! to the next top-level document. Stray top-level end tags and documents
//! that exceed [`ParserLimits::max_document_bytes`] are reported once per
//! garbage run and skipped. A configurable consecutive-failure cap fuses
//! the stream when a peer sends nothing but garbage.

use crate::limits::ParserLimits;
use crate::reader::{XmlError, XmlErrorKind};
use crate::tree::Document;
use std::io::{BufRead, Read};

/// Default consecutive-failure cap for [`DocumentStream`].
pub const DEFAULT_MAX_CONSECUTIVE_FAILURES: usize = 64;

/// Iterator over the documents in a byte stream.
///
/// ```
/// use pxf_xml::DocumentStream;
/// let stream = b"<a><b/></a>\n<c/> <d>x</d>";
/// let docs: Result<Vec<_>, _> = DocumentStream::new(&stream[..]).collect();
/// let docs = docs.unwrap();
/// assert_eq!(docs.len(), 3);
/// assert_eq!(docs[0].node(0).tag, "a");
/// assert_eq!(docs[2].node(0).tag, "d");
/// ```
///
/// Malformed documents yield `Err` items but the iteration continues —
/// collect into a `Result` to stop at the first error, or keep calling
/// `next()` to resync past it:
///
/// ```
/// use pxf_xml::DocumentStream;
/// let stream = b"<a></b> <ok/>";
/// let items: Vec<_> = DocumentStream::new(&stream[..]).collect();
/// assert!(items[0].is_err());
/// assert_eq!(items[1].as_ref().unwrap().node(0).tag, "ok");
/// ```
pub struct DocumentStream<R: Read> {
    input: R,
    buffer: Vec<u8>,
    /// Bytes of `buffer` already scanned by the boundary scanner.
    scanned: usize,
    scanner: Scanner,
    done: bool,
    limits: ParserLimits,
    max_consecutive_failures: usize,
    consecutive_failures: usize,
    /// Failure cap hit: yield one final error, then fuse.
    exhausted: bool,
    /// Stream-absolute offset of `buffer[0]` (bytes consumed so far).
    base: usize,
    /// No more input will arrive: the reader hit EOF, or a push-mode
    /// caller declared the stream complete via [`Self::finish`].
    input_eof: bool,
    /// True while skipping the tail of a desynced or oversized document;
    /// suppresses repeated errors for one garbage run.
    in_garbage: bool,
    /// Malformed documents and garbage runs resynced past so far.
    recovered: usize,
}

/// Boundary scanner state.
#[derive(Debug, Default)]
struct Scanner {
    depth: i64,
    /// Have we seen the first start tag of the current document?
    started: bool,
    /// An end tag took `depth` negative: the stream is desynced and the
    /// current tag (once it closes) must be reported, not yielded.
    stray: bool,
    mode: Mode,
}

/// What the boundary scanner found.
enum ScanHit {
    /// Offset one past the end of a complete document.
    Doc(usize),
    /// Offset one past a stray top-level end tag (desync point).
    Stray(usize),
}

/// Outcome of polling the bytes buffered so far ([`DocumentStream::poll_raw_at`]).
///
/// This is the push-mode counterpart of [`DocumentStream::next_raw_at`]:
/// a long-lived connection (e.g. a broker ingesting framed document
/// chunks) calls [`DocumentStream::feed`] with whatever bytes arrived and
/// then polls until `NeedInput`, without ever blocking on a reader.
#[derive(Debug)]
pub enum PollDoc {
    /// A complete document: its stream-absolute start offset plus its raw
    /// bytes (leading inter-document whitespace included).
    Doc(usize, Vec<u8>),
    /// A boundary-level failure: desync, an oversized garbage run, a
    /// truncated trailer after [`DocumentStream::finish`], or the
    /// consecutive-failure cap fusing the stream. Unless the stream is
    /// now over, polling continues past it.
    Fail(XmlError),
    /// No complete document in the buffered bytes: feed more input (or
    /// call [`DocumentStream::finish`] if there is none).
    NeedInput,
    /// The stream is over: finished and fully drained, or fused by the
    /// failure cap. All further polls return `End`.
    End,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum Mode {
    #[default]
    Text,
    /// Inside a tag (`<...>`), with the current quote byte if any.
    Tag(Option<u8>),
    Comment(u8), // number of consecutive '-' seen (0..=2)
    Cdata(u8),   // number of consecutive ']' seen (0..=2)
    /// `<!DOCTYPE …>` with bracket nesting depth.
    Doctype(u8),
    Pi(bool), // saw '?'
    /// Just saw `<` — classifying the construct.
    Open,
    /// Saw `<!` — could be comment, CDATA, or DOCTYPE.
    Bang(u8),
    /// Inside a tag, previous byte was `/` (possible self-close).
    TagSlash,
}

impl<R: Read> DocumentStream<R> {
    /// Creates a stream over a reader with default [`ParserLimits`].
    pub fn new(input: R) -> Self {
        DocumentStream::with_limits(input, ParserLimits::default())
    }

    /// Creates a stream enforcing the given per-document resource budget.
    pub fn with_limits(input: R, limits: ParserLimits) -> Self {
        DocumentStream {
            input,
            buffer: Vec::with_capacity(8 * 1024),
            scanned: 0,
            scanner: Scanner::default(),
            done: false,
            limits,
            max_consecutive_failures: DEFAULT_MAX_CONSECUTIVE_FAILURES,
            consecutive_failures: 0,
            exhausted: false,
            base: 0,
            input_eof: false,
            in_garbage: false,
            recovered: 0,
        }
    }

    /// Sets the consecutive-failure cap: after this many failures with no
    /// successfully parsed document in between, the stream yields one
    /// [`XmlErrorKind::TooManyFailures`] error and then terminates.
    pub fn max_consecutive_failures(mut self, cap: usize) -> Self {
        self.max_consecutive_failures = cap.max(1);
        self
    }

    /// Number of malformed documents and garbage runs resynced past.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// Stream-absolute offset of the next unconsumed byte.
    pub fn stream_position(&self) -> usize {
        self.base
    }

    /// Records a successful document against the consecutive-failure cap.
    ///
    /// The `Iterator` implementation calls this after each successful
    /// parse. Callers that consume raw bytes via
    /// [`next_raw`](Self::next_raw) and parse or match them externally
    /// should call this (and [`note_failure`](Self::note_failure)) so the
    /// cap stays *consecutive*; otherwise scanner-level failures count
    /// cumulatively over the stream's whole lifetime.
    pub fn note_success(&mut self) {
        self.consecutive_failures = 0;
    }

    /// Records a document-level failure (parse or downstream) against the
    /// consecutive-failure cap.
    pub fn note_failure(&mut self) {
        self.consecutive_failures += 1;
        self.recovered += 1;
        if self.consecutive_failures >= self.max_consecutive_failures {
            self.exhausted = true;
        }
    }

    /// Scans newly buffered bytes; returns the byte offset one past the end
    /// of a complete document or stray end tag, if one is now present.
    fn scan(&mut self) -> Option<ScanHit> {
        let s = &mut self.scanner;
        while self.scanned < self.buffer.len() {
            let b = self.buffer[self.scanned];
            self.scanned += 1;
            match s.mode {
                Mode::Text => {
                    if b == b'<' {
                        s.mode = Mode::Open;
                    }
                }
                Mode::Open => match b {
                    b'!' => s.mode = Mode::Bang(0),
                    b'?' => s.mode = Mode::Pi(false),
                    b'/' => {
                        // End tag.
                        s.depth -= 1;
                        if s.depth < 0 {
                            // More closes than opens: desynced. Swallow
                            // this tag and report the desync point.
                            s.depth = 0;
                            s.stray = true;
                        }
                        s.mode = Mode::Tag(None);
                    }
                    _ => {
                        s.depth += 1;
                        s.started = true;
                        s.mode = Mode::Tag(None);
                    }
                },
                Mode::Bang(n) => match (n, b) {
                    (0, b'-') => s.mode = Mode::Bang(1),
                    (1, b'-') => s.mode = Mode::Comment(0),
                    (0, b'[') => s.mode = Mode::Bang(2),
                    (2, _) => {
                        // inside "<![CDATA[" prefix; count to the second '['
                        if b == b'[' {
                            s.mode = Mode::Cdata(0);
                        }
                    }
                    (0, _) => s.mode = Mode::Doctype(0),
                    _ => s.mode = Mode::Doctype(0),
                },
                Mode::Comment(dashes) => {
                    s.mode = match (dashes, b) {
                        (2, b'>') => Mode::Text,
                        (_, b'-') => Mode::Comment((dashes + 1).min(2)),
                        _ => Mode::Comment(0),
                    }
                }
                Mode::Cdata(brackets) => {
                    s.mode = match (brackets, b) {
                        (2, b'>') => Mode::Text,
                        (_, b']') => Mode::Cdata((brackets + 1).min(2)),
                        _ => Mode::Cdata(0),
                    }
                }
                Mode::Doctype(depth) => {
                    s.mode = match b {
                        b'[' => Mode::Doctype(depth + 1),
                        b']' => Mode::Doctype(depth.saturating_sub(1)),
                        b'>' if depth == 0 => Mode::Text,
                        _ => Mode::Doctype(depth),
                    }
                }
                Mode::Pi(saw_q) => {
                    s.mode = match (saw_q, b) {
                        (true, b'>') => Mode::Text,
                        (_, b'?') => Mode::Pi(true),
                        _ => Mode::Pi(false),
                    }
                }
                Mode::Tag(Some(q)) => {
                    if b == q {
                        s.mode = Mode::Tag(None);
                    }
                }
                Mode::Tag(None) => match b {
                    b'"' | b'\'' => s.mode = Mode::Tag(Some(b)),
                    b'/' => s.mode = Mode::TagSlash,
                    b'>' => {
                        s.mode = Mode::Text;
                        if s.stray {
                            s.stray = false;
                            return Some(ScanHit::Stray(self.scanned));
                        }
                        if s.started && s.depth == 0 {
                            return Some(ScanHit::Doc(self.scanned));
                        }
                    }
                    _ => {}
                },
                Mode::TagSlash => match b {
                    b'>' => {
                        // Self-closing tag: undo the depth increment.
                        s.depth -= 1;
                        s.mode = Mode::Text;
                        if s.stray {
                            s.stray = false;
                            return Some(ScanHit::Stray(self.scanned));
                        }
                        if s.started && s.depth == 0 {
                            return Some(ScanHit::Doc(self.scanned));
                        }
                    }
                    b'"' | b'\'' => s.mode = Mode::Tag(Some(b)),
                    b'/' => {}
                    _ => s.mode = Mode::Tag(None),
                },
            }
        }
        None
    }

    /// Drains `n` scanned bytes and resets the boundary scanner.
    fn consume(&mut self, n: usize) -> Vec<u8> {
        let bytes: Vec<u8> = self.buffer.drain(..n).collect();
        self.base += n;
        self.scanned = 0;
        self.scanner = Scanner::default();
        bytes
    }

    /// Appends bytes to the scan buffer (push-mode ingest). The bytes need
    /// not align with document boundaries — a document may span any number
    /// of `feed` calls, and one call may carry several documents.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Declares the end of input for push-mode use: after this, a buffered
    /// partial document is reported as [`XmlErrorKind::StreamTruncated`]
    /// and polling reaches [`PollDoc::End`].
    pub fn finish(&mut self) {
        self.input_eof = true;
    }

    /// Push-mode frame-boundary check: discards any bytes buffered past
    /// the last complete document and resets the boundary scanner, so the
    /// next [`Self::feed`] starts at a document boundary. Framed callers
    /// use this when a frame that must carry whole documents ends with the
    /// scanner still inside one. Returns `Some(dropped)` when the discard
    /// swallowed a real partial document — counted against the
    /// consecutive-failure cap — and `None` when the buffer was empty,
    /// whitespace padding, or the tail of an already-reported garbage run.
    pub fn discard_partial(&mut self) -> Option<usize> {
        let len = self.buffer.len();
        if len == 0 {
            return None;
        }
        let real = !self.in_garbage && self.buffer.iter().any(|b| !b.is_ascii_whitespace());
        self.consume(len);
        self.in_garbage = false;
        if real {
            self.note_failure();
            Some(len)
        } else {
            None
        }
    }

    /// Polls the bytes buffered so far for the next complete document,
    /// without reading from the underlying input. Push-mode callers
    /// alternate [`Self::feed`] and `poll_raw_at` (polling until
    /// [`PollDoc::NeedInput`] after each feed); the blocking
    /// [`Self::next_raw_at`] is this poll plus a read on `NeedInput`.
    ///
    /// Raw-path consumers remain responsible for the failure-cap contract:
    /// call [`Self::note_success`] / [`Self::note_failure`] per delivered
    /// document, exactly as with [`Self::next_raw`].
    pub fn poll_raw_at(&mut self) -> PollDoc {
        if self.done {
            return PollDoc::End;
        }
        if self.exhausted {
            self.done = true;
            return PollDoc::Fail(XmlError::new(
                self.base,
                XmlErrorKind::TooManyFailures(self.max_consecutive_failures),
            ));
        }
        loop {
            match self.scan() {
                Some(ScanHit::Doc(end)) => {
                    let start = self.base;
                    let bytes = self.consume(end);
                    self.in_garbage = false;
                    return PollDoc::Doc(start, bytes);
                }
                Some(ScanHit::Stray(end)) => {
                    let pos = self.base;
                    self.consume(end);
                    if self.in_garbage {
                        // Tail of an already-reported bad run: skip quietly.
                        continue;
                    }
                    self.in_garbage = true;
                    self.note_failure();
                    return PollDoc::Fail(XmlError::new(pos, XmlErrorKind::StreamDesync));
                }
                None => {}
            }
            // No boundary in the buffered bytes yet. A well-formed document
            // must fit the byte budget — otherwise drop the run and resync.
            if self.buffer.len() > self.limits.max_document_bytes {
                let pos = self.base;
                let len = self.buffer.len();
                self.consume(len);
                let already = self.in_garbage;
                self.in_garbage = true;
                if already {
                    continue;
                }
                self.note_failure();
                return PollDoc::Fail(XmlError::new(
                    pos,
                    XmlErrorKind::DocumentTooLarge(self.limits.max_document_bytes),
                ));
            }
            if self.input_eof {
                self.done = true;
                // Trailing garbage or an incomplete document?
                if !self.in_garbage && self.buffer.iter().any(|b| !b.is_ascii_whitespace()) {
                    return PollDoc::Fail(XmlError::new(
                        self.base + self.buffer.len(),
                        XmlErrorKind::StreamTruncated,
                    ));
                }
                return PollDoc::End;
            }
            return PollDoc::NeedInput;
        }
    }
}

impl DocumentStream<std::io::Empty> {
    /// Creates a push-mode stream with no underlying reader: all input
    /// arrives through [`Self::feed`] and documents come out of
    /// [`Self::poll_raw_at`]. This is the broker ingest shape — framed
    /// chunks from a connection are fed as they arrive.
    pub fn push_mode(limits: ParserLimits) -> Self {
        DocumentStream::with_limits(std::io::empty(), limits)
    }
}

impl<R: BufRead> DocumentStream<R> {
    /// Yields the raw bytes of the next complete document on the stream
    /// without parsing them — the boundary scanner alone decides where one
    /// document ends. This is the broker ingest hook for the tree-free
    /// match path: feed the returned bytes straight to a streaming matcher
    /// (e.g. `Matcher::match_bytes`) and no `Document` is ever built.
    pub fn next_raw(&mut self) -> Option<Result<Vec<u8>, XmlError>> {
        self.next_raw_at().map(|r| r.map(|(_, bytes)| bytes))
    }

    /// Like [`next_raw`](Self::next_raw), but also returns the
    /// stream-absolute byte offset at which the document starts, so
    /// per-document parse errors can be reported relative to the whole
    /// stream.
    pub fn next_raw_at(&mut self) -> Option<Result<(usize, Vec<u8>), XmlError>> {
        loop {
            match self.poll_raw_at() {
                PollDoc::Doc(start, bytes) => return Some(Ok((start, bytes))),
                PollDoc::Fail(e) => return Some(Err(e)),
                PollDoc::End => return None,
                PollDoc::NeedInput => {
                    let mut chunk = [0u8; 4096];
                    match self.input.read(&mut chunk) {
                        Ok(0) => self.input_eof = true,
                        Ok(n) => self.buffer.extend_from_slice(&chunk[..n]),
                        Err(e) => {
                            self.done = true;
                            return Some(Err(XmlError::new(
                                self.base,
                                XmlErrorKind::Io(e.to_string()),
                            )));
                        }
                    }
                }
            }
        }
    }
}

impl<R: BufRead> Iterator for DocumentStream<R> {
    type Item = Result<Document, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        let limits = self.limits;
        match self.next_raw_at()? {
            Err(e) => Some(Err(e)),
            Ok((start, bytes)) => match Document::parse_with_limits(&bytes, limits) {
                Ok(doc) => {
                    self.note_success();
                    Some(Ok(doc))
                }
                Err(mut e) => {
                    self.note_failure();
                    // Report the error relative to the whole stream, not
                    // the drained document buffer.
                    e.pos += start;
                    Some(Err(e))
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(input: &str) -> Result<Vec<Document>, XmlError> {
        DocumentStream::new(input.as_bytes()).collect()
    }

    #[test]
    fn multiple_documents() {
        let docs = collect("<a><b/></a><c/>\n  <d>text</d>").unwrap();
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[0].len(), 2);
        assert_eq!(docs[1].node(0).tag, "c");
        assert_eq!(docs[2].node(0).text, "text");
    }

    #[test]
    fn single_document() {
        let docs = collect("<root><x/></root>").unwrap();
        assert_eq!(docs.len(), 1);
    }

    #[test]
    fn empty_stream() {
        assert!(collect("").unwrap().is_empty());
        assert!(collect("   \n  ").unwrap().is_empty());
    }

    #[test]
    fn prolog_and_comments_between_documents() {
        let input = r#"<?xml version="1.0"?><a/><!-- separator --><b/>"#;
        let docs = collect(input).unwrap();
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn tricky_content_does_not_confuse_boundaries() {
        // '>' inside attribute values, CDATA with tags, comments with tags.
        let input = r#"<a x="1>2"><!-- <fake> --><![CDATA[</a>]]></a><b/>"#;
        let docs = collect(input).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].node(0).attr("x"), Some("1>2"));
    }

    #[test]
    fn self_closing_roots() {
        let docs = collect("<a/><b/><c/>").unwrap();
        assert_eq!(docs.len(), 3);
    }

    #[test]
    fn doctype_with_internal_subset() {
        let input = "<!DOCTYPE a [<!ELEMENT a (b)> ]><a><b/></a><c/>";
        let docs = collect(input).unwrap();
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn incomplete_document_is_an_error() {
        let result: Result<Vec<Document>, XmlError> = collect("<a><b/>");
        let err = result.unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::StreamTruncated);
    }

    #[test]
    fn malformed_document_reports_parse_error() {
        let mut stream = DocumentStream::new(&b"<a></b> <ok/>"[..]);
        // Boundary scanner pairs <a> with </b> (depth math), the parser
        // then rejects the mismatch.
        let first = stream.next().unwrap();
        assert!(first.is_err());
    }

    #[test]
    fn stream_resyncs_past_malformed_documents() {
        let input = "<a></b> <ok/> <broken x=></broken> <fine><y/></fine>";
        let items: Vec<_> = DocumentStream::new(input.as_bytes()).collect();
        assert_eq!(items.len(), 4);
        assert!(items[0].is_err());
        assert_eq!(items[1].as_ref().unwrap().node(0).tag, "ok");
        assert!(items[2].is_err());
        assert_eq!(items[3].as_ref().unwrap().node(0).tag, "fine");
    }

    #[test]
    fn stray_end_tags_are_reported_once_and_skipped() {
        let input = "<a/> </x></y></z> <b/>";
        let mut stream = DocumentStream::new(input.as_bytes());
        assert_eq!(stream.next().unwrap().unwrap().node(0).tag, "a");
        // One desync error for the whole </x></y></z> run.
        let err = stream.next().unwrap().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::StreamDesync);
        assert_eq!(stream.next().unwrap().unwrap().node(0).tag, "b");
        assert!(stream.next().is_none());
        assert_eq!(stream.recovered(), 1);
    }

    #[test]
    fn parse_errors_carry_stream_absolute_offsets() {
        // The second document is malformed; its error position must point
        // into the stream, past the first document, not into a private
        // per-document buffer.
        let input = "<first/><second></first></second>";
        let mut stream = DocumentStream::new(input.as_bytes());
        assert!(stream.next().unwrap().is_ok());
        let err = stream.next().unwrap().unwrap_err();
        let expected_at = input.find("</first>").unwrap() + "</first".len();
        assert!(
            err.pos > "<first/>".len(),
            "offset {} not stream-absolute",
            err.pos
        );
        assert_eq!(err.pos, expected_at + 1);
    }

    #[test]
    fn oversized_document_is_dropped_and_stream_recovers() {
        let limits = ParserLimits {
            max_document_bytes: 64,
            ..ParserLimits::default()
        };
        let mut input = String::from("<a>");
        for _ in 0..50 {
            input.push_str("<x>");
        }
        input.push_str("<b/> <after/>");
        let items: Vec<_> = DocumentStream::with_limits(input.as_bytes(), limits).collect();
        // One DocumentTooLarge error for the bomb, then the stream either
        // resyncs (if a clean boundary follows) or ends quietly.
        assert!(items
            .iter()
            .any(|r| matches!(r, Err(e) if e.kind == XmlErrorKind::DocumentTooLarge(64))));
        assert!(items
            .iter()
            .all(|r| r.is_err() || !r.as_ref().unwrap().is_empty()));
    }

    #[test]
    fn consecutive_failure_cap_fuses_the_stream() {
        // Ten malformed documents with a cap of 3: three per-document
        // errors, one TooManyFailures, then the stream ends.
        let input = "<a x=></a>".repeat(10);
        let items: Vec<_> = DocumentStream::new(input.as_bytes())
            .max_consecutive_failures(3)
            .collect();
        assert_eq!(items.len(), 4);
        assert!(items[..3].iter().all(|r| r.is_err()));
        assert_eq!(
            items[3].as_ref().unwrap_err().kind,
            XmlErrorKind::TooManyFailures(3)
        );
    }

    #[test]
    fn successes_reset_the_failure_cap() {
        let input = "<a x=></a><ok/>".repeat(10);
        let items: Vec<_> = DocumentStream::new(input.as_bytes())
            .max_consecutive_failures(3)
            .collect();
        assert_eq!(items.len(), 20);
        assert_eq!(items.iter().filter(|r| r.is_ok()).count(), 10);
    }

    #[test]
    fn chunk_boundaries_do_not_matter() {
        // Feed one byte at a time through a BufRead with capacity 1.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        impl BufRead for OneByte<'_> {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                Ok(self.0)
            }
            fn consume(&mut self, _amt: usize) {}
        }
        let input = br#"<a x="<">1</a><b><c/></b>"#;
        let docs: Result<Vec<_>, _> = DocumentStream::new(OneByte(input)).collect();
        let docs = docs.unwrap();
        assert_eq!(docs.len(), 2);
    }

    /// The raw-ingest failure-cap contract (the PR-8 ingest bugfix): a
    /// long-lived raw-path consumer that reports per-document outcomes via
    /// `note_success`/`note_failure` keeps the cap *consecutive* — sparse
    /// garbage interleaved with good documents never fuses the stream, and
    /// `recovered()` counts exactly the failed documents and garbage runs.
    #[test]
    fn raw_ingest_contract_keeps_failure_cap_consecutive() {
        // 150 units, each: a parse-level bad document (clean boundary, bad
        // attribute syntax), a good document, and a scanner-level stray
        // end tag. Far more total failures than the default cap of 64.
        let input = "<bad x=></bad><good/></zz> ".repeat(150);
        let mut stream = DocumentStream::new(input.as_bytes());
        let (mut good, mut parse_failures, mut desyncs) = (0usize, 0usize, 0usize);
        let mut fused = false;
        while let Some(item) = stream.next_raw() {
            match item {
                Ok(bytes) => match Document::parse(&bytes) {
                    Ok(_) => {
                        stream.note_success();
                        good += 1;
                    }
                    Err(_) => {
                        stream.note_failure();
                        parse_failures += 1;
                    }
                },
                Err(e) => {
                    fused |= matches!(e.kind, XmlErrorKind::TooManyFailures(_));
                    desyncs += 1;
                }
            }
        }
        assert!(!fused, "interleaved successes must keep the stream unfused");
        assert_eq!(good, 150);
        assert_eq!(parse_failures, 150);
        assert_eq!(desyncs, 150);
        // Exact accounting: every bad document and every garbage run.
        assert_eq!(stream.recovered(), 300);
    }

    /// Pins the pre-fix behavior of `examples/stream_broker.rs`: a raw-path
    /// consumer that never calls `note_success` lets scanner-level failures
    /// accumulate over the stream's lifetime, so sparse garbage spuriously
    /// fuses a long-lived stream despite plenty of good documents.
    #[test]
    fn raw_ingest_without_success_notes_fuses_spuriously() {
        let input = "</zz> <good/> ".repeat(100);
        let mut stream = DocumentStream::new(input.as_bytes());
        let mut good = 0usize;
        let mut fused = false;
        while let Some(item) = stream.next_raw() {
            match item {
                Ok(_) => good += 1, // contract violation: no note_success
                Err(e) => fused |= matches!(e.kind, XmlErrorKind::TooManyFailures(_)),
            }
        }
        assert!(fused, "cumulative counting hits the cap of 64");
        assert!(good < 100, "the fuse cut the stream short");
    }

    #[test]
    fn push_mode_feed_and_poll_across_chunk_boundaries() {
        let input = b"<a x=\"1>2\"><b/></a> <c/><d>t</d>";
        let mut stream = DocumentStream::push_mode(ParserLimits::default());
        let mut docs: Vec<Vec<u8>> = Vec::new();
        // Feed in 5-byte chunks; poll to quiescence after every feed.
        for chunk in input.chunks(5) {
            stream.feed(chunk);
            loop {
                match stream.poll_raw_at() {
                    PollDoc::Doc(_, bytes) => docs.push(bytes),
                    PollDoc::NeedInput => break,
                    other => panic!("unexpected poll outcome: {other:?}"),
                }
            }
        }
        stream.finish();
        loop {
            match stream.poll_raw_at() {
                PollDoc::Doc(_, bytes) => docs.push(bytes),
                PollDoc::End => break,
                other => panic!("unexpected poll outcome: {other:?}"),
            }
        }
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[0], b"<a x=\"1>2\"><b/></a>");
        assert_eq!(docs[2], b"<d>t</d>");
    }

    #[test]
    fn discard_partial_resyncs_to_a_document_boundary() {
        let mut stream = DocumentStream::push_mode(ParserLimits::default());
        stream.feed(b"<a><b"); // frame ends inside a document
        assert!(matches!(stream.poll_raw_at(), PollDoc::NeedInput));
        assert_eq!(stream.discard_partial(), Some(5));
        assert_eq!(stream.recovered(), 1);
        // The next feed starts clean — the leftover "<a><b" must not
        // concatenate with it.
        stream.feed(b"<c/>");
        match stream.poll_raw_at() {
            PollDoc::Doc(_, bytes) => assert_eq!(bytes, b"<c/>"),
            other => panic!("expected a document, got {other:?}"),
        }
        // Empty and whitespace-only buffers discard quietly.
        assert_eq!(stream.discard_partial(), None);
        stream.feed(b"  \n");
        assert_eq!(stream.discard_partial(), None);
        assert_eq!(stream.recovered(), 1);
    }

    #[test]
    fn push_mode_reports_truncation_then_ends() {
        let mut stream = DocumentStream::push_mode(ParserLimits::default());
        stream.feed(b"<a/> <unfinished><x/>");
        assert!(matches!(stream.poll_raw_at(), PollDoc::Doc(0, _)));
        assert!(matches!(stream.poll_raw_at(), PollDoc::NeedInput));
        stream.finish();
        match stream.poll_raw_at() {
            PollDoc::Fail(e) => assert_eq!(e.kind, XmlErrorKind::StreamTruncated),
            other => panic!("expected truncation, got {other:?}"),
        }
        assert!(matches!(stream.poll_raw_at(), PollDoc::End));
        assert!(matches!(stream.poll_raw_at(), PollDoc::End));
    }

    #[test]
    fn next_raw_at_reports_document_offsets() {
        let mut stream = DocumentStream::new(&b"<a/> <b/>"[..]);
        let (at_a, bytes_a) = stream.next_raw_at().unwrap().unwrap();
        assert_eq!(at_a, 0);
        assert_eq!(bytes_a, b"<a/>");
        // The second chunk starts right after the first document's last
        // byte; the separating whitespace belongs to it.
        let (at_b, bytes_b) = stream.next_raw_at().unwrap().unwrap();
        assert_eq!(at_b, 4);
        assert_eq!(bytes_b, b" <b/>");
        assert!(stream.next_raw_at().is_none());
    }
}
