//! Streaming over concatenated XML documents.
//!
//! A filtering broker ingests an unbounded stream of documents — often
//! concatenated back-to-back or separated by whitespace on one connection.
//! [`DocumentStream`] incrementally scans such a byte stream, finds
//! document boundaries (tracking element depth through comments, CDATA,
//! processing instructions, DOCTYPE declarations, and quoted attribute
//! values), and yields each complete document parsed.

use crate::reader::XmlError;
use crate::tree::Document;
use std::io::{BufRead, Read};

/// Iterator over the documents in a byte stream.
///
/// ```
/// use pxf_xml::DocumentStream;
/// let stream = b"<a><b/></a>\n<c/> <d>x</d>";
/// let docs: Result<Vec<_>, _> = DocumentStream::new(&stream[..]).collect();
/// let docs = docs.unwrap();
/// assert_eq!(docs.len(), 3);
/// assert_eq!(docs[0].node(0).tag, "a");
/// assert_eq!(docs[2].node(0).tag, "d");
/// ```
pub struct DocumentStream<R: Read> {
    input: R,
    buffer: Vec<u8>,
    /// Bytes of `buffer` already scanned by the boundary scanner.
    scanned: usize,
    scanner: Scanner,
    done: bool,
}

/// Boundary scanner state.
#[derive(Debug, Default)]
struct Scanner {
    depth: i64,
    /// Have we seen the first start tag of the current document?
    started: bool,
    mode: Mode,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum Mode {
    #[default]
    Text,
    /// Inside a tag (`<...>`), with the current quote byte if any.
    Tag(Option<u8>),
    Comment(u8), // number of consecutive '-' seen (0..=2)
    Cdata(u8),   // number of consecutive ']' seen (0..=2)
    /// `<!DOCTYPE …>` with bracket nesting depth.
    Doctype(u8),
    Pi(bool), // saw '?'
    /// Just saw `<` — classifying the construct.
    Open,
    /// Saw `<!` — could be comment, CDATA, or DOCTYPE.
    Bang(u8),
    /// Inside a tag, previous byte was `/` (possible self-close).
    TagSlash,
}

impl<R: Read> DocumentStream<R> {
    /// Creates a stream over a reader.
    pub fn new(input: R) -> Self {
        DocumentStream {
            input,
            buffer: Vec::with_capacity(8 * 1024),
            scanned: 0,
            scanner: Scanner::default(),
            done: false,
        }
    }

    /// Scans newly buffered bytes; returns the byte offset one past the end
    /// of a complete document, if one is now present.
    fn scan(&mut self) -> Option<usize> {
        let s = &mut self.scanner;
        while self.scanned < self.buffer.len() {
            let b = self.buffer[self.scanned];
            self.scanned += 1;
            match s.mode {
                Mode::Text => {
                    if b == b'<' {
                        s.mode = Mode::Open;
                    }
                }
                Mode::Open => match b {
                    b'!' => s.mode = Mode::Bang(0),
                    b'?' => s.mode = Mode::Pi(false),
                    b'/' => {
                        // End tag.
                        s.depth -= 1;
                        s.mode = Mode::Tag(None);
                    }
                    _ => {
                        s.depth += 1;
                        s.started = true;
                        s.mode = Mode::Tag(None);
                    }
                },
                Mode::Bang(n) => match (n, b) {
                    (0, b'-') => s.mode = Mode::Bang(1),
                    (1, b'-') => s.mode = Mode::Comment(0),
                    (0, b'[') => s.mode = Mode::Bang(2),
                    (2, _) => {
                        // inside "<![CDATA[" prefix; count to the second '['
                        if b == b'[' {
                            s.mode = Mode::Cdata(0);
                        }
                    }
                    (0, _) => s.mode = Mode::Doctype(0),
                    _ => s.mode = Mode::Doctype(0),
                },
                Mode::Comment(dashes) => {
                    s.mode = match (dashes, b) {
                        (2, b'>') => Mode::Text,
                        (_, b'-') => Mode::Comment((dashes + 1).min(2)),
                        _ => Mode::Comment(0),
                    }
                }
                Mode::Cdata(brackets) => {
                    s.mode = match (brackets, b) {
                        (2, b'>') => Mode::Text,
                        (_, b']') => Mode::Cdata((brackets + 1).min(2)),
                        _ => Mode::Cdata(0),
                    }
                }
                Mode::Doctype(depth) => {
                    s.mode = match b {
                        b'[' => Mode::Doctype(depth + 1),
                        b']' => Mode::Doctype(depth.saturating_sub(1)),
                        b'>' if depth == 0 => Mode::Text,
                        _ => Mode::Doctype(depth),
                    }
                }
                Mode::Pi(saw_q) => {
                    s.mode = match (saw_q, b) {
                        (true, b'>') => Mode::Text,
                        (_, b'?') => Mode::Pi(true),
                        _ => Mode::Pi(false),
                    }
                }
                Mode::Tag(Some(q)) => {
                    if b == q {
                        s.mode = Mode::Tag(None);
                    }
                }
                Mode::Tag(None) => match b {
                    b'"' | b'\'' => s.mode = Mode::Tag(Some(b)),
                    b'/' => s.mode = Mode::TagSlash,
                    b'>' => {
                        s.mode = Mode::Text;
                        if s.started && s.depth == 0 {
                            return Some(self.scanned);
                        }
                    }
                    _ => {}
                },
                Mode::TagSlash => match b {
                    b'>' => {
                        // Self-closing tag: undo the depth increment.
                        s.depth -= 1;
                        s.mode = Mode::Text;
                        if s.started && s.depth == 0 {
                            return Some(self.scanned);
                        }
                    }
                    b'"' | b'\'' => s.mode = Mode::Tag(Some(b)),
                    b'/' => {}
                    _ => s.mode = Mode::Tag(None),
                },
            }
        }
        None
    }
}

impl<R: BufRead> DocumentStream<R> {
    /// Yields the raw bytes of the next complete document on the stream
    /// without parsing them — the boundary scanner alone decides where one
    /// document ends. This is the broker ingest hook for the tree-free
    /// match path: feed the returned bytes straight to a streaming matcher
    /// (e.g. `Matcher::match_bytes`) and no `Document` is ever built.
    pub fn next_raw(&mut self) -> Option<Result<Vec<u8>, XmlError>> {
        if self.done {
            return None;
        }
        loop {
            if let Some(end) = self.scan() {
                let doc_bytes: Vec<u8> = self.buffer.drain(..end).collect();
                self.scanned = 0;
                self.scanner = Scanner::default();
                return Some(Ok(doc_bytes));
            }
            // Need more input.
            let mut chunk = [0u8; 4096];
            match self.input.read(&mut chunk) {
                Ok(0) => {
                    self.done = true;
                    // Trailing garbage or an incomplete document?
                    if self.buffer.iter().any(|b| !b.is_ascii_whitespace()) {
                        return Some(Err(XmlError {
                            pos: self.buffer.len(),
                            message: "stream ended inside a document".into(),
                        }));
                    }
                    return None;
                }
                Ok(n) => self.buffer.extend_from_slice(&chunk[..n]),
                Err(e) => {
                    self.done = true;
                    return Some(Err(XmlError {
                        pos: 0,
                        message: format!("I/O error: {e}"),
                    }));
                }
            }
        }
    }
}

impl<R: BufRead> Iterator for DocumentStream<R> {
    type Item = Result<Document, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_raw()
            .map(|r| r.and_then(|bytes| Document::parse(&bytes)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(input: &str) -> Result<Vec<Document>, XmlError> {
        DocumentStream::new(input.as_bytes()).collect()
    }

    #[test]
    fn multiple_documents() {
        let docs = collect("<a><b/></a><c/>\n  <d>text</d>").unwrap();
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[0].len(), 2);
        assert_eq!(docs[1].node(0).tag, "c");
        assert_eq!(docs[2].node(0).text, "text");
    }

    #[test]
    fn single_document() {
        let docs = collect("<root><x/></root>").unwrap();
        assert_eq!(docs.len(), 1);
    }

    #[test]
    fn empty_stream() {
        assert!(collect("").unwrap().is_empty());
        assert!(collect("   \n  ").unwrap().is_empty());
    }

    #[test]
    fn prolog_and_comments_between_documents() {
        let input = r#"<?xml version="1.0"?><a/><!-- separator --><b/>"#;
        let docs = collect(input).unwrap();
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn tricky_content_does_not_confuse_boundaries() {
        // '>' inside attribute values, CDATA with tags, comments with tags.
        let input = r#"<a x="1>2"><!-- <fake> --><![CDATA[</a>]]></a><b/>"#;
        let docs = collect(input).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].node(0).attr("x"), Some("1>2"));
    }

    #[test]
    fn self_closing_roots() {
        let docs = collect("<a/><b/><c/>").unwrap();
        assert_eq!(docs.len(), 3);
    }

    #[test]
    fn doctype_with_internal_subset() {
        let input = "<!DOCTYPE a [<!ELEMENT a (b)> ]><a><b/></a><c/>";
        let docs = collect(input).unwrap();
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn incomplete_document_is_an_error() {
        let result: Result<Vec<Document>, XmlError> = collect("<a><b/>");
        assert!(result.is_err());
    }

    #[test]
    fn malformed_document_reports_parse_error() {
        let mut stream = DocumentStream::new(&b"<a></b> <ok/>"[..]);
        // Boundary scanner pairs <a> with </b> (depth math), the parser
        // then rejects the mismatch.
        let first = stream.next().unwrap();
        assert!(first.is_err());
    }

    #[test]
    fn chunk_boundaries_do_not_matter() {
        // Feed one byte at a time through a BufRead with capacity 1.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        impl BufRead for OneByte<'_> {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                Ok(self.0)
            }
            fn consume(&mut self, _amt: usize) {}
        }
        let input = br#"<a x="<">1</a><b><c/></b>"#;
        let docs: Result<Vec<_>, _> = DocumentStream::new(OneByte(input)).collect();
        let docs = docs.unwrap();
        assert_eq!(docs.len(), 2);
    }
}
