//! `pxf` — command-line XML/XPath filtering.
//!
//! ```text
//! pxf match  --subs FILE [--engine pxf|yfilter|index-filter|xfilter]
//!            [--algorithm basic|pc|ap] [--attr-mode inline|sp]
//!            [--threads N] [--shards N] [--stats] [--quiet]
//!            DOC.xml [DOC.xml …]
//! pxf match  --subs FILE --stream [-]          # concatenated docs on stdin
//! pxf encode 'EXPR' ['EXPR' …]
//! pxf generate --regime nitf|psd --exprs N --docs N --out DIR [--seed S]
//! pxf broker --listen HOST:PORT [--workers N] [--queue-cap N] [limits]
//! pxf --help
//! ```
//!
//! Subscription files contain one XPath expression per line; blank lines
//! and lines starting with `#` are ignored. `pxf match` prints, for every
//! document, the 1-based line numbers of the matching subscriptions. All
//! matching takes the streaming path (parse + match in one pass, no
//! document tree); every engine is driven through the
//! [`FilterBackend`] trait.

use pxf_core::{
    parallel, Algorithm, AttrMode, BatchReport, BatchScratch, FilterBackend, FilterEngine,
    ShardedEngine, SubId,
};
use pxf_workload::{Regime, XPathGenerator, XmlGenerator};
use pxf_xml::{Document, ParserLimits};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Exit codes: 0 all documents filtered cleanly, 1 some documents were
    // rejected (malformed or over resource limits), 2 usage error.
    let result = match args.first().map(|s| s.as_str()) {
        Some("match") => cmd_match(&args[1..]),
        Some("encode") => cmd_encode(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("generate") => cmd_generate(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("broker") => cmd_broker(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command '{other}' (see pxf --help)")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("pxf: {message}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "pxf — predicate-based XML/XPath filtering

USAGE:
  pxf match  --subs FILE [options] DOC.xml [DOC.xml …]
  pxf encode 'EXPR' ['EXPR' …]
  pxf generate --regime nitf|psd --exprs N --docs N --out DIR [--seed S]
  pxf broker [--listen HOST:PORT] [--workers N] [--queue-cap N]
             [--outbox-cap N] [--shed-ingest] [parser limit options]

MATCH OPTIONS:
  --subs FILE          subscription file (one XPath per line, # comments)
  --engine NAME        pxf | yfilter | index-filter | xfilter (default: pxf)
  --algorithm KIND     basic | pc | ap            (default: ap, pxf only)
  --attr-mode MODE     inline | sp                (default: inline, pxf only)
  --threads N          parallel workers; 0 = all cores (default: 1; pxf only)
  --shards N           split the expression index across N round-robin
                       shards merged per document (default: 1; pxf only)
  --stream             read concatenated documents from stdin (or from one
                       file argument) instead of one document per file
  --remove LINES       after loading, unsubscribe the given comma-separated
                       1-based subscription-file line numbers (exercises
                       incremental index maintenance; pxf engines only)
  --stats              print matching statistics to stderr
  --quiet              suppress per-document output (timing runs only)

PARSER LIMIT OPTIONS (per document; hostile-input hardening):
  --max-depth N        element nesting depth         (default: 256)
  --max-doc-bytes N    document size in bytes        (default: 64 MiB)
  --max-attrs N        attributes per element        (default: 256)
  --max-attr-value N   attribute value length        (default: 1 MiB)
  --max-name-len N     tag/attribute name length     (default: 4096)
  --max-entities N     entity references per doc     (default: 1048576)
  --max-failures N     consecutive bad stream documents before giving up
                       (default: 64; --stream only)

BROKER OPTIONS (long-running pub/sub service; see DESIGN.md §11):
  --listen HOST:PORT   listen address      (default: 127.0.0.1:7878)
  --workers N          matcher threads; 0 = derive from cores (default: 0)
  --queue-cap N        ingest queue capacity          (default: 1024)
  --outbox-cap N       per-connection outbox capacity (default: 65536)
  --shed-ingest        shed documents at the ingest high-water mark
                       instead of blocking the publisher's connection
  The parser limit options above apply per document (default: strict
  profile). Protocol: SUB/UNSUB/DOC/STATS/QUIT/SHUTDOWN; drive it with
  the `loadgen` binary of pxf-broker.

Output: one line per document: `<path>: <n> [line numbers…]`
(`<stream#i>` in --stream mode). Exit status: 0 if every document was
filtered, 1 if any document was rejected, 2 on usage errors."
    );
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Parses the value of a numeric flag.
fn take_number(args: &[String], i: &mut usize, flag: &str) -> Result<usize, String> {
    take_value(args, i, flag)?
        .parse()
        .map_err(|_| format!("{flag} needs a number"))
}

fn cmd_match(args: &[String]) -> Result<ExitCode, String> {
    let mut subs_path: Option<PathBuf> = None;
    let mut engine_name = "pxf".to_string();
    let mut algorithm = Algorithm::AccessPredicate;
    let mut attr_mode = AttrMode::Inline;
    let mut threads = 1usize;
    let mut shards = 1usize;
    let mut stats = false;
    let mut quiet = false;
    let mut stream = false;
    let mut limits = ParserLimits::default();
    let mut max_failures = pxf_xml::DEFAULT_MAX_CONSECUTIVE_FAILURES;
    let mut remove_lines: Vec<usize> = Vec::new();
    let mut docs: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--subs" => subs_path = Some(PathBuf::from(take_value(args, &mut i, "--subs")?)),
            "--engine" => engine_name = take_value(args, &mut i, "--engine")?,
            "--algorithm" => {
                algorithm = match take_value(args, &mut i, "--algorithm")?.as_str() {
                    "basic" => Algorithm::Basic,
                    "pc" => Algorithm::PrefixCovering,
                    "ap" => Algorithm::AccessPredicate,
                    other => return Err(format!("unknown algorithm '{other}'")),
                }
            }
            "--attr-mode" => {
                attr_mode = match take_value(args, &mut i, "--attr-mode")?.as_str() {
                    "inline" => AttrMode::Inline,
                    "sp" | "postponed" => AttrMode::Postponed,
                    other => return Err(format!("unknown attr mode '{other}'")),
                }
            }
            "--threads" => {
                threads = take_value(args, &mut i, "--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a number".to_string())?
            }
            "--shards" => {
                shards = take_number(args, &mut i, "--shards")?;
                if shards == 0 {
                    return Err("--shards needs at least 1".into());
                }
            }
            "--stats" => stats = true,
            "--quiet" => quiet = true,
            "--stream" => stream = true,
            "--remove" => {
                for part in take_value(args, &mut i, "--remove")?.split(',') {
                    remove_lines.push(
                        part.trim().parse::<usize>().map_err(|_| {
                            "--remove needs comma-separated line numbers".to_string()
                        })?,
                    );
                }
            }
            "--max-depth" => limits.max_depth = take_number(args, &mut i, "--max-depth")?,
            "--max-doc-bytes" => {
                limits.max_document_bytes = take_number(args, &mut i, "--max-doc-bytes")?
            }
            "--max-attrs" => limits.max_attributes = take_number(args, &mut i, "--max-attrs")?,
            "--max-attr-value" => {
                limits.max_attribute_value_len = take_number(args, &mut i, "--max-attr-value")?
            }
            "--max-name-len" => limits.max_name_len = take_number(args, &mut i, "--max-name-len")?,
            "--max-entities" => {
                limits.max_entity_expansions = take_number(args, &mut i, "--max-entities")?
            }
            "--max-failures" => max_failures = take_number(args, &mut i, "--max-failures")?,
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            doc => docs.push(PathBuf::from(doc)),
        }
        i += 1;
    }
    let subs_path = subs_path.ok_or("--subs FILE is required")?;
    if docs.is_empty() && !stream {
        return Err("no documents given".into());
    }

    // Build the requested engine behind the unified backend interface.
    // `pxf` keeps its concrete type (plain or sharded) for the
    // multi-threaded batch path.
    let mut pxf_engine: Option<FilterEngine> = None;
    let mut sharded_engine: Option<ShardedEngine> = None;
    let mut baseline: Option<Box<dyn FilterBackend>> = None;
    match engine_name.as_str() {
        "pxf" if shards > 1 => {
            sharded_engine = Some(ShardedEngine::new(shards, algorithm, attr_mode))
        }
        "pxf" => pxf_engine = Some(FilterEngine::new(algorithm, attr_mode)),
        "yfilter" => baseline = Some(Box::new(pxf_yfilter::YFilter::new())),
        "index-filter" => baseline = Some(Box::new(pxf_indexfilter::IndexFilter::new())),
        "xfilter" => baseline = Some(Box::new(pxf_xfilter::XFilter::new())),
        other => {
            return Err(format!(
                "unknown engine '{other}' (pxf|yfilter|index-filter|xfilter)"
            ))
        }
    }
    let is_pxf = pxf_engine.is_some() || sharded_engine.is_some();
    if !is_pxf && threads != 1 {
        return Err(format!(
            "--threads applies to the default pxf engine, not '{engine_name}'"
        ));
    }
    if !is_pxf && shards != 1 {
        return Err(format!(
            "--shards applies to the default pxf engine, not '{engine_name}'"
        ));
    }

    // Load subscriptions.
    let text = std::fs::read_to_string(&subs_path)
        .map_err(|e| format!("cannot read {}: {e}", subs_path.display()))?;
    // SubId → 1-based line number.
    let mut lines_of: Vec<usize> = Vec::new();
    let mut skipped = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let backend: &mut dyn FilterBackend = match (&mut pxf_engine, &mut sharded_engine) {
            (Some(e), _) => e,
            (None, Some(e)) => e,
            (None, None) => baseline.as_mut().expect("one engine is built").as_mut(),
        };
        match backend.add_str(line) {
            Ok(_) => lines_of.push(lineno + 1),
            Err(e) => {
                eprintln!("pxf: line {}: {e} — skipped", lineno + 1);
                skipped += 1;
            }
        }
    }
    let backend: &mut dyn FilterBackend = match (&mut pxf_engine, &mut sharded_engine) {
        (Some(e), _) => e,
        (None, Some(e)) => e,
        (None, None) => baseline.as_mut().expect("one engine is built").as_mut(),
    };
    backend.set_parser_limits(limits);
    backend.prepare();
    // Post-prepare removals: patches the live index in place instead of
    // rebuilding it (see EngineStats::incremental_patches).
    let mut removed = 0usize;
    for lineno in &remove_lines {
        match lines_of.iter().position(|l| l == lineno) {
            Some(idx) if backend.remove(SubId(idx as u32)) => removed += 1,
            Some(_) => eprintln!("pxf: --remove {lineno}: engine does not support removal"),
            None => eprintln!("pxf: --remove {lineno}: no subscription loaded from that line"),
        }
    }
    if stats && !remove_lines.is_empty() {
        eprintln!("pxf: removed {removed} of {} subscriptions", lines_of.len());
    }
    if stats {
        eprintln!(
            "pxf: {} subscriptions ({skipped} skipped), {} distinct predicates",
            lines_of.len(),
            backend.distinct_predicates()
        );
    }

    if stream {
        return match_stream(
            backend,
            &lines_of,
            &docs,
            quiet,
            stats,
            limits,
            max_failures,
        );
    }

    // Load documents.
    let mut doc_bytes: Vec<Vec<u8>> = Vec::with_capacity(docs.len());
    for p in &docs {
        doc_bytes.push(std::fs::read(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?);
    }

    let started = std::time::Instant::now();
    let mut batch_scratch = BatchScratch::new();
    let results: Vec<parallel::ByteFilterResult> = match (&pxf_engine, &sharded_engine) {
        // pxf: shared-engine fan-out (sequential fast path at threads=1).
        (Some(e), _) => {
            parallel::filter_batch_bytes_with(e, &doc_bytes, threads, &mut batch_scratch)
        }
        (None, Some(e)) => {
            parallel::filter_batch_bytes_with(e, &doc_bytes, threads, &mut batch_scratch)
        }
        (None, None) => {
            let backend = baseline.as_mut().expect("one engine is built");
            doc_bytes
                .iter()
                .map(|b| backend.match_bytes(b).map_err(parallel::DocError::from))
                .collect()
        }
    };
    let elapsed = started.elapsed();

    let report = BatchReport::from_results(&results);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut total = 0usize;
    for (path, result) in docs.iter().zip(results) {
        match result {
            Ok(matched) => {
                total += matched.len();
                if !quiet {
                    let lines: Vec<String> = matched
                        .iter()
                        .map(|s: &SubId| lines_of[s.0 as usize].to_string())
                        .collect();
                    writeln!(
                        out,
                        "{}: {} [{}]",
                        path.display(),
                        lines.len(),
                        lines.join(" ")
                    )
                    .map_err(|e| e.to_string())?;
                }
            }
            Err(e) => eprintln!("pxf: {}: {e}", path.display()),
        }
    }
    if stats {
        eprintln!(
            "pxf: {} documents in {:.2} ms ({:.3} ms/doc), {total} matches",
            docs.len(),
            elapsed.as_secs_f64() * 1e3,
            elapsed.as_secs_f64() * 1e3 / docs.len() as f64,
        );
    }
    if report.recovered() > 0 {
        eprintln!("pxf: {report}");
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

/// Streams concatenated documents (stdin, or one file) through the engine.
/// Each document goes raw-bytes → match set in one pass
/// ([`FilterBackend::match_bytes`]); no `Document` tree is built. A
/// malformed document is reported (with its stream-absolute byte offset)
/// and the stream resyncs to the next document; `max_failures` consecutive
/// bad documents abort the stream.
fn match_stream(
    backend: &mut dyn FilterBackend,
    lines_of: &[usize],
    inputs: &[PathBuf],
    quiet: bool,
    stats: bool,
    limits: ParserLimits,
    max_failures: usize,
) -> Result<ExitCode, String> {
    use pxf_xml::DocumentStream;
    let reader: Box<dyn std::io::BufRead> = match inputs {
        [] => Box::new(std::io::stdin().lock()),
        [one] if one.as_os_str() == "-" => Box::new(std::io::stdin().lock()),
        [one] => Box::new(std::io::BufReader::new(
            std::fs::File::open(one).map_err(|e| format!("cannot open {}: {e}", one.display()))?,
        )),
        _ => return Err("--stream takes stdin or exactly one file".into()),
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let started = std::time::Instant::now();
    let mut count = 0usize;
    let mut total = 0usize;
    let mut failed = 0usize;
    let mut stream =
        DocumentStream::with_limits(reader, limits).max_consecutive_failures(max_failures);
    let mut i = 0usize;
    while let Some(raw) = stream.next_raw_at() {
        match raw {
            Ok((start, bytes)) => match backend.match_bytes(&bytes) {
                Ok(matched) => {
                    stream.note_success();
                    count += 1;
                    total += matched.len();
                    if !quiet {
                        let lines: Vec<String> = matched
                            .iter()
                            .map(|s| lines_of[s.0 as usize].to_string())
                            .collect();
                        writeln!(out, "<stream#{i}>: {} [{}]", lines.len(), lines.join(" "))
                            .map_err(|e| e.to_string())?;
                    }
                }
                Err(mut e) => {
                    // Report the parse error at its stream-absolute offset.
                    stream.note_failure();
                    failed += 1;
                    e.pos += start;
                    eprintln!("pxf: stream document #{i}: {e}");
                }
            },
            // Boundary-level failures (desync, truncation, oversized runs,
            // the failure cap itself) already count toward the cap inside
            // the stream.
            Err(e) => {
                failed += 1;
                eprintln!("pxf: stream document #{i}: {e}");
            }
        }
        i += 1;
    }
    if stats {
        let elapsed = started.elapsed();
        eprintln!(
            "pxf: {count} streamed documents in {:.2} ms, {total} matches",
            elapsed.as_secs_f64() * 1e3
        );
    }
    if failed > 0 {
        eprintln!("pxf: {count} documents ok, {failed} rejected");
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

/// Runs the long-running pub/sub broker service until a client sends
/// `SHUTDOWN` (or the process is killed).
fn cmd_broker(args: &[String]) -> Result<(), String> {
    use pxf_broker::{Backpressure, Broker, BrokerConfig};
    let mut config = BrokerConfig {
        listen: "127.0.0.1:7878".to_string(),
        limits: ParserLimits::strict(),
        ..BrokerConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => config.listen = take_value(args, &mut i, "--listen")?,
            "--workers" => config.workers = take_number(args, &mut i, "--workers")?,
            "--queue-cap" => config.ingest_capacity = take_number(args, &mut i, "--queue-cap")?,
            "--outbox-cap" => config.outbox_capacity = take_number(args, &mut i, "--outbox-cap")?,
            "--shed-ingest" => config.ingest_policy = Backpressure::Shed,
            "--max-depth" => config.limits.max_depth = take_number(args, &mut i, "--max-depth")?,
            "--max-doc-bytes" => {
                config.limits.max_document_bytes = take_number(args, &mut i, "--max-doc-bytes")?
            }
            "--max-attrs" => {
                config.limits.max_attributes = take_number(args, &mut i, "--max-attrs")?
            }
            "--max-attr-value" => {
                config.limits.max_attribute_value_len =
                    take_number(args, &mut i, "--max-attr-value")?
            }
            "--max-name-len" => {
                config.limits.max_name_len = take_number(args, &mut i, "--max-name-len")?
            }
            "--max-entities" => {
                config.limits.max_entity_expansions = take_number(args, &mut i, "--max-entities")?
            }
            flag => return Err(format!("unknown flag '{flag}'")),
        }
        i += 1;
    }
    let handle = Broker::spawn(config).map_err(|e| format!("cannot start broker: {e}"))?;
    eprintln!("pxf broker listening on {}", handle.local_addr());
    let stats = handle.wait();
    eprintln!(
        "pxf broker stopped: ingested={} matched={} parse_failures={} delivered={} \
         epoch={} rebuilds={} clone_fallbacks={}",
        stats.ingested,
        stats.matched,
        stats.parse_failures,
        stats.delivered,
        stats.epoch,
        stats.full_rebuilds,
        stats.clone_fallbacks
    );
    Ok(())
}

fn cmd_encode(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("encode needs at least one expression".into());
    }
    let mut interner = pxf_xml::Interner::new();
    for src in args {
        let expr = pxf_xpath::parse(src).map_err(|e| e.to_string())?;
        if expr.has_nested_paths() {
            println!("{src}");
            let plan = pxf_core::nested::decompose(&expr);
            for (ci, comp) in plan.components.iter().enumerate() {
                let enc = pxf_core::encode::encode_single_path(
                    &comp.expr.structural_skeleton(),
                    &mut interner,
                    pxf_core::AttrMode::Postponed,
                )
                .map_err(|e| e.to_string())?;
                let rendered: Vec<String> =
                    enc.preds.iter().map(|p| p.to_notation(&interner)).collect();
                let branch = comp
                    .parent
                    .map(|p| {
                        format!(
                            " [branches from #{p} at (pos, =, {})]",
                            comp.parent_branch_step + 1
                        )
                    })
                    .unwrap_or_default();
                println!("  #{ci} {}{branch}", comp.expr);
                println!("      {}", rendered.join(" |-> "));
            }
        } else {
            let enc = pxf_core::encode::encode_single_path(
                &expr,
                &mut interner,
                pxf_core::AttrMode::Inline,
            )
            .map_err(|e| e.to_string())?;
            let rendered: Vec<String> =
                enc.preds.iter().map(|p| p.to_notation(&interner)).collect();
            println!("{src}");
            println!("  {}", rendered.join(" |-> "));
        }
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let mut regime_name = "nitf".to_string();
    let mut n_exprs = 1000usize;
    let mut n_docs = 10usize;
    let mut out_dir: Option<PathBuf> = None;
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--regime" => regime_name = take_value(args, &mut i, "--regime")?,
            "--exprs" => {
                n_exprs = take_value(args, &mut i, "--exprs")?
                    .parse()
                    .map_err(|_| "--exprs needs a number".to_string())?
            }
            "--docs" => {
                n_docs = take_value(args, &mut i, "--docs")?
                    .parse()
                    .map_err(|_| "--docs needs a number".to_string())?
            }
            "--out" => out_dir = Some(PathBuf::from(take_value(args, &mut i, "--out")?)),
            "--seed" => {
                seed = take_value(args, &mut i, "--seed")?
                    .parse()
                    .map_err(|_| "--seed needs a number".to_string())?
            }
            flag => return Err(format!("unknown flag '{flag}'")),
        }
        i += 1;
    }
    let out_dir = out_dir.ok_or("--out DIR is required")?;
    let regime = match regime_name.as_str() {
        "nitf" => Regime::nitf(),
        "psd" => Regime::psd(),
        other => return Err(format!("unknown regime '{other}' (nitf|psd)")),
    };
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;

    let mut xpath = regime.xpath.clone();
    xpath.count = n_exprs;
    xpath.seed = seed;
    let exprs = XPathGenerator::new(&regime.dtd, xpath).generate();
    let subs_file = out_dir.join("subscriptions.xpath");
    let mut text = String::new();
    for e in &exprs {
        text.push_str(&e.to_string());
        text.push('\n');
    }
    std::fs::write(&subs_file, text).map_err(|e| e.to_string())?;

    let mut xml = regime.xml.clone();
    xml.seed = seed.wrapping_add(1);
    let mut gen = XmlGenerator::new(&regime.dtd, xml);
    for d in 0..n_docs {
        let doc: Document = gen.generate();
        let path = out_dir.join(format!("doc{d:04}.xml"));
        std::fs::write(&path, doc.to_xml()).map_err(|e| e.to_string())?;
    }
    println!(
        "wrote {} subscriptions and {} documents to {}",
        exprs.len(),
        n_docs,
        out_dir.display()
    );
    Ok(())
}
