//! End-to-end tests of the `pxf` binary via `CARGO_BIN_EXE_pxf`.

use std::path::Path;
use std::process::Command;

fn pxf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pxf"))
}

fn write(path: &Path, content: &str) {
    std::fs::write(path, content).unwrap();
}

#[test]
fn help_exits_zero() {
    let out = pxf().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = pxf().arg("bogus").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn encode_prints_predicates() {
    let out = pxf().args(["encode", "/a/*/b//c"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("(p_a, =, 1)"), "{text}");
    assert!(text.contains("(d(p_b, p_c), >=, 1)"), "{text}");
}

#[test]
fn encode_decomposes_nested() {
    let out = pxf().args(["encode", "/a[b]/c"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("#0 /a/c"), "{text}");
    assert!(text.contains("#1 /a/b"), "{text}");
    assert!(text.contains("branches from #0"), "{text}");
}

#[test]
fn encode_rejects_bad_expression() {
    let out = pxf().args(["encode", "/a["]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn match_pipeline() {
    let dir = std::env::temp_dir().join(format!("pxf-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let subs = dir.join("subs.xpath");
    write(
        &subs,
        "# comment line\n/a/b\n\n//c\nbroken[\n/a/b[@x >= 2]\n",
    );
    let doc1 = dir.join("one.xml");
    write(&doc1, r#"<a><b x="5"/></a>"#);
    let doc2 = dir.join("two.xml");
    write(&doc2, "<z><c/></z>");

    let out = pxf()
        .args(["match", "--subs"])
        .arg(&subs)
        .args(["--stats"])
        .arg(&doc1)
        .arg(&doc2)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Line 5 ("broken[") is reported skipped.
    assert!(stderr.contains("line 5"), "{stderr}");
    // doc1 matches /a/b (line 2) and the attribute filter (line 6).
    assert!(stdout.contains("one.xml: 2 [2 6]"), "{stdout}");
    // doc2 matches //c (line 4).
    assert!(stdout.contains("two.xml: 1 [4]"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_then_match_roundtrip() {
    let dir = std::env::temp_dir().join(format!("pxf-cli-gen-{}", std::process::id()));
    let out = pxf()
        .args([
            "generate", "--regime", "psd", "--exprs", "50", "--docs", "3", "--out",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let subs = dir.join("subscriptions.xpath");
    assert!(subs.exists());
    let docs: Vec<_> = (0..3).map(|i| dir.join(format!("doc{i:04}.xml"))).collect();
    let mut cmd = pxf();
    cmd.args(["match", "--subs"])
        .arg(&subs)
        .args(["--threads", "2"]);
    for d in &docs {
        assert!(d.exists());
        cmd.arg(d);
    }
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 3, "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deterministic_generation() {
    let d1 = std::env::temp_dir().join(format!("pxf-det1-{}", std::process::id()));
    let d2 = std::env::temp_dir().join(format!("pxf-det2-{}", std::process::id()));
    for d in [&d1, &d2] {
        let out = pxf()
            .args([
                "generate", "--regime", "nitf", "--exprs", "30", "--docs", "1", "--seed", "9",
                "--out",
            ])
            .arg(d)
            .output()
            .unwrap();
        assert!(out.status.success());
    }
    let s1 = std::fs::read_to_string(d1.join("subscriptions.xpath")).unwrap();
    let s2 = std::fs::read_to_string(d2.join("subscriptions.xpath")).unwrap();
    assert_eq!(s1, s2);
    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&d2).ok();
}

#[test]
fn stream_mode_reads_concatenated_documents() {
    use std::io::Write as _;
    let dir = std::env::temp_dir().join(format!("pxf-cli-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let subs = dir.join("subs.xpath");
    write(&subs, "/a/b\n//c\n");
    let wire = dir.join("wire.xml");
    write(&wire, "<a><b/></a><z><c/></z>\n<q/>");

    let out = pxf()
        .args(["match", "--subs"])
        .arg(&subs)
        .arg("--stream")
        .arg(&wire)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("<stream#0>: 1 [1]"), "{stdout}");
    assert!(stdout.contains("<stream#1>: 1 [2]"), "{stdout}");
    assert!(stdout.contains("<stream#2>: 0 []"), "{stdout}");

    // Stdin variant.
    let mut child = pxf()
        .args(["match", "--subs"])
        .arg(&subs)
        .args(["--stream", "-"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"<a><b/></a>")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("<stream#0>: 1 [1]"));
    std::fs::remove_dir_all(&dir).ok();
}
