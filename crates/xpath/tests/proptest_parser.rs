//! Robustness: the parser must never panic, and accepted inputs must
//! round-trip through Display.

use proptest::prelude::*;
use pxf_xpath::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary UTF-8 never panics the parser.
    #[test]
    fn parser_never_panics(input in ".{0,80}") {
        let _ = parse(&input);
    }

    /// Inputs over the XPath alphabet never panic, and anything accepted
    /// round-trips.
    #[test]
    fn alphabet_inputs_roundtrip(input in "[a-c/*@\\[\\]=<>!'\"0-9 ]{0,40}") {
        if let Ok(expr) = parse(&input) {
            let rendered = expr.to_string();
            let reparsed = parse(&rendered).unwrap();
            prop_assert_eq!(expr, reparsed);
        }
    }

    /// Well-formed random expressions always parse.
    #[test]
    fn constructed_expressions_parse(
        absolute in any::<bool>(),
        steps in proptest::collection::vec(("[a-e]{1,3}", any::<bool>(), any::<bool>()), 1..7),
    ) {
        let mut src = String::new();
        for (i, (tag, desc, wild)) in steps.iter().enumerate() {
            if i == 0 {
                if absolute { src.push('/'); }
            } else {
                src.push('/');
                if *desc { src.push('/'); }
            }
            if *wild { src.push('*'); } else { src.push_str(tag); }
        }
        let expr = parse(&src).unwrap();
        prop_assert_eq!(expr.steps.len(), steps.len());
        prop_assert_eq!(expr.absolute, absolute);
    }
}
