//! Robustness: the parser must never panic, and accepted inputs must
//! round-trip through Display. Seeded randomized sweeps (in-tree PRNG;
//! no registry dependencies).

use pxf_rng::Rng;
use pxf_xpath::parse;

/// Random string of `len` chars drawn from `alphabet`.
fn random_string(rng: &mut Rng, alphabet: &[char], len: usize) -> String {
    (0..len).map(|_| *rng.choose(alphabet)).collect()
}

#[test]
fn parser_never_panics_on_arbitrary_unicode() {
    let mut rng = Rng::seed_from_u64(0x1234);
    for _ in 0..512 {
        let len = rng.gen_range(0..80usize);
        let input: String = (0..len)
            .filter_map(|_| char::from_u32(rng.gen_range(0..0x11_0000u32)))
            .collect();
        let _ = parse(&input);
    }
}

#[test]
fn alphabet_inputs_roundtrip() {
    let alphabet: Vec<char> = "abc/*@[]=<>!'\"0123456789 ".chars().collect();
    let mut rng = Rng::seed_from_u64(0x5678);
    for _ in 0..2048 {
        let len = rng.gen_range(0..40usize);
        let input = random_string(&mut rng, &alphabet, len);
        if let Ok(expr) = parse(&input) {
            let rendered = expr.to_string();
            let reparsed = parse(&rendered).unwrap();
            assert_eq!(expr, reparsed, "input {input:?} rendered {rendered:?}");
        }
    }
}

#[test]
fn constructed_expressions_parse() {
    let tags: Vec<char> = "abcde".chars().collect();
    let mut rng = Rng::seed_from_u64(0x9abc);
    for _ in 0..512 {
        let absolute = rng.gen_bool(0.5);
        let n_steps = rng.gen_range(1..7usize);
        let mut src = String::new();
        for i in 0..n_steps {
            let desc = rng.gen_bool(0.5);
            let wild = rng.gen_bool(0.5);
            if i == 0 {
                if absolute {
                    src.push('/');
                }
            } else {
                src.push('/');
                if desc {
                    src.push('/');
                }
            }
            if wild {
                src.push('*');
            } else {
                let tag_len = rng.gen_range(1..=3usize);
                src.push_str(&random_string(&mut rng, &tags, tag_len));
            }
        }
        let expr = parse(&src).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        assert_eq!(expr.steps.len(), n_steps, "{src:?}");
        assert_eq!(expr.absolute, absolute, "{src:?}");
    }
}
