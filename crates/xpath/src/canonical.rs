//! Canonical normal form and structural hashing of XPath expressions.
//!
//! Two syntactically different expressions of the XP{//,*,[]} fragment can
//! be *structurally identical* for the filtering semantics: the predicate
//! encoding (paper §3.2) only records, between two adjacent tagged steps,
//! the step distance and whether **any** `//` lies between them — not where
//! in the wildcard run the `//` sits. `a/*//b` and `a//*/b` therefore
//! encode to the same predicate chain and match exactly the same paths.
//! The subscription-set optimizer hash-dedups on this normal form, so a
//! duplicate-heavy workload collapses to its canonical expressions before
//! any per-expression index state is allocated.
//!
//! The normal form applies exactly the rewrites the encoding cannot
//! distinguish:
//!
//! * within each wildcard run between two tagged steps (the closing tagged
//!   step included), a descendant axis anywhere moves to the *first* step
//!   of the run (`a/*//b` → `a//*/b`),
//! * the leading run of an absolute expression is normalized the same way
//!   (`/*//a` → `//*/a`); for a *relative* expression the leading axes are
//!   vacuous (the expression floats to any path offset) and all clear to
//!   child (`*//a` → `*/a`),
//! * trailing wildcards after the last tagged step always mean "at least
//!   this many more levels" (end-of-path predicate), so their descendant
//!   flags clear (`/a/b//*` → `/a/b/*`),
//! * an all-wildcard expression constrains only the path length (`length ≥
//!   n` — absolute and relative collapse, paper s7/s11), so it normalizes
//!   to the relative all-child spelling (`/*//*` → `*/*`),
//! * attribute filters on a step sort lexicographically and exact
//!   duplicates collapse (`[@y = 2][@x = 1]` → `[@x = 1][@y = 2]`).
//!
//! Expressions with nested path filters keep their axes untouched (only
//! filter ordering is normalized): a nested filter anchors its relative
//! path at the step, so leading-axis rewrites that are vacuous for
//! top-level relative expressions would change its meaning.

use crate::ast::{Axis, Step, StepFilter, XPathExpr};

/// FNV-1a over a byte string — the structural hash primitive. Stable
/// across processes (no `RandomState`), so hashes can be compared between
/// engine instances and serialized snapshots.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl XPathExpr {
    /// Returns the canonical normal form of this expression: a
    /// semantically identical expression such that two expressions with
    /// equal canonical renderings match exactly the same documents (see
    /// the module docs for the rewrites applied).
    pub fn canonical(&self) -> XPathExpr {
        let mut steps: Vec<Step> = self.steps.iter().map(canonical_step).collect();
        let mut absolute = self.absolute;
        // Axis rewrites are justified by the *single-path* matching
        // semantics; nested filters anchor at their step, so expressions
        // carrying them only get the filter-ordering normalization.
        if !self.has_nested_paths() {
            let tagged: Vec<usize> = steps
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.test.is_wildcard())
                .map(|(i, _)| i)
                .collect();
            match tagged.first() {
                None => {
                    // Only wildcards: a pure length constraint.
                    for s in &mut steps {
                        s.axis = Axis::Child;
                    }
                    absolute = false;
                }
                Some(&first) => {
                    if absolute {
                        normalize_run(&mut steps, 0, first);
                    } else {
                        // Leading axes of a relative expression are
                        // vacuous: it floats to any path offset anyway.
                        for s in &mut steps[..=first] {
                            s.axis = Axis::Child;
                        }
                    }
                    for w in tagged.windows(2) {
                        normalize_run(&mut steps, w[0] + 1, w[1]);
                    }
                    let last = *tagged.last().unwrap();
                    for s in &mut steps[last + 1..] {
                        s.axis = Axis::Child;
                    }
                }
            }
        }
        XPathExpr { absolute, steps }
    }

    /// Structural hash: [`fnv1a`] over the canonical rendering. Equal
    /// hashes are a candidate for structural identity; callers verify by
    /// comparing the canonical renderings (the hash is 64-bit, not a
    /// proof).
    pub fn structural_hash(&self) -> u64 {
        fnv1a(self.canonical().to_string().as_bytes())
    }
}

/// Collapses the descendant axes of `steps[from..=to]` (a wildcard run
/// plus its closing step) onto the run's first step: the encoding only
/// records "some `//` in the gap", so the position within the run is
/// immaterial.
fn normalize_run(steps: &mut [Step], from: usize, to: usize) {
    let any_desc = steps[from..=to].iter().any(|s| s.axis == Axis::Descendant);
    for s in &mut steps[from..=to] {
        s.axis = Axis::Child;
    }
    if any_desc {
        steps[from].axis = Axis::Descendant;
    }
}

/// Normalizes a step's filter list: attribute filters sorted and
/// deduplicated, nested path filters canonicalized recursively, then
/// sorted and deduplicated; attributes before paths.
fn canonical_step(step: &Step) -> Step {
    let mut attrs: Vec<StepFilter> = Vec::new();
    let mut paths: Vec<StepFilter> = Vec::new();
    for f in &step.filters {
        match f {
            StepFilter::Attribute(a) => attrs.push(StepFilter::Attribute(a.clone())),
            StepFilter::Path(p) => paths.push(StepFilter::Path(p.canonical())),
        }
    }
    // Filters are conjunctive, so ordering is free and exact duplicates
    // are redundant. Sort by rendering: the AST types deliberately do not
    // expose an `Ord` (there is no meaningful comparison semantics), and
    // filter lists are tiny (0–2 entries in the paper's workloads).
    let key = |f: &StepFilter| f.to_string();
    attrs.sort_by_key(key);
    attrs.dedup();
    paths.sort_by_key(key);
    paths.dedup();
    attrs.extend(paths);
    Step {
        axis: step.axis,
        test: step.test.clone(),
        filters: attrs,
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    fn canon(src: &str) -> String {
        parse(src).unwrap().canonical().to_string()
    }

    #[test]
    fn wildcard_run_descendant_moves_to_front() {
        assert_eq!(canon("a/*//b"), "a//*/b");
        assert_eq!(canon("a//*/b"), "a//*/b");
        assert_eq!(canon("/a/*/*//b"), "/a//*/*/b");
        assert_eq!(canon("/a/*//*/b"), "/a//*/*/b");
        // No descendant in the run: untouched.
        assert_eq!(canon("/a/*/*/b"), "/a/*/*/b");
    }

    #[test]
    fn leading_runs() {
        assert_eq!(canon("/*//a"), "//*/a");
        assert_eq!(canon("//*/a"), "//*/a");
        // Relative leading axes are vacuous.
        assert_eq!(canon("*//a"), "*/a");
        assert_eq!(canon("*/a"), "*/a");
    }

    #[test]
    fn trailing_wildcards_clear() {
        assert_eq!(canon("/a/b//*"), "/a/b/*");
        assert_eq!(canon("/a/b/*//*"), "/a/b/*/*");
    }

    #[test]
    fn all_wildcards_collapse_to_relative() {
        assert_eq!(canon("/*/*"), "*/*");
        assert_eq!(canon("/*//*"), "*/*");
        assert_eq!(canon("*/*"), "*/*");
    }

    #[test]
    fn direct_descendant_steps_unchanged() {
        // `//` between two tagged steps has nowhere to move.
        assert_eq!(canon("/a//b"), "/a//b");
        assert_eq!(canon("//a"), "//a");
        assert_eq!(canon("/a"), "/a");
    }

    #[test]
    fn attr_filters_sort_and_dedup() {
        assert_eq!(canon("/a/b[@y = 2][@x = 1]"), "/a/b[@x = 1][@y = 2]");
        assert_eq!(canon("/a/b[@x = 1][@x = 1]"), "/a/b[@x = 1]");
        assert_eq!(canon("/a/b[@x = 1][@y = 2]"), "/a/b[@x = 1][@y = 2]");
    }

    #[test]
    fn nested_filters_keep_axes() {
        // The nested path anchors at the step: its axes are significant,
        // and the outer axes stay put too.
        assert_eq!(canon("/a[b//c]/*//d"), "/a[b//c]/*//d");
        // But filter ordering still normalizes.
        assert_eq!(canon("/a[c][b]/d"), "/a[b][c]/d");
    }

    #[test]
    fn canonical_is_idempotent() {
        for src in [
            "a/*//b",
            "/*//a",
            "*//a/b//*",
            "/*/*",
            "/a/b[@y = 2][@x = 1]",
            "/a[b//c]/d",
            "*/a/*/b//c/*/*",
        ] {
            let c1 = parse(src).unwrap().canonical();
            let c2 = c1.canonical();
            assert_eq!(c1, c2, "{src}");
        }
    }

    #[test]
    fn structural_hash_distinguishes_and_merges() {
        let h = |s: &str| parse(s).unwrap().structural_hash();
        assert_eq!(h("a/*//b"), h("a//*/b"));
        assert_eq!(h("/a/b[@y = 2][@x = 1]"), h("/a/b[@x = 1][@y = 2]"));
        assert_eq!(h("/*/*"), h("*/*"));
        assert_ne!(h("/a"), h("//a"));
        assert_ne!(h("/a/b"), h("/a/c"));
        assert_ne!(h("a/b"), h("/a/b"));
    }

    #[test]
    fn canonical_reparses() {
        for src in ["a/*//b", "/*//a", "/a/b[@y = 2][@x = 1]", "/*/*"] {
            let c = parse(src).unwrap().canonical();
            let s = c.to_string();
            assert_eq!(parse(&s).unwrap(), c, "{src} -> {s}");
        }
    }
}
