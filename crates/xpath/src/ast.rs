//! Abstract syntax tree for the XPath subset handled by the filtering engine.
//!
//! The language covers exactly what the paper's encoding supports:
//! parent-child steps (`/`), ancestor-descendant steps (`//`), name tests,
//! wildcards (`*`), attribute-based filters (`[@a op v]`, `[@a]`) and nested
//! path filters (`[rel/path]`).

use std::fmt;

/// Relationship between a location step and its predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/` — the step's node is a direct child of the previous node.
    Child,
    /// `//` — the step's node is any descendant of the previous node.
    Descendant,
}

/// The node test of a location step: a tag name or the wildcard `*`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// A named element test, e.g. `book`.
    Tag(String),
    /// The wildcard test `*`, matching any element.
    Wildcard,
}

impl NodeTest {
    /// Returns the tag name if this is a named test.
    pub fn tag(&self) -> Option<&str> {
        match self {
            NodeTest::Tag(t) => Some(t),
            NodeTest::Wildcard => None,
        }
    }

    /// True if this is the wildcard test.
    pub fn is_wildcard(&self) -> bool {
        matches!(self, NodeTest::Wildcard)
    }
}

/// Comparison operator used in attribute filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates `lhs op rhs` for ordered operands.
    pub fn eval_ord(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The textual operator as it appears in an expression.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An attribute filter value: integer literals compare numerically, quoted
/// literals compare as strings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttrValue {
    /// An integer literal, compared numerically.
    Int(i64),
    /// A quoted string literal, compared lexicographically.
    Str(String),
}

impl AttrValue {
    /// Compares a raw attribute value from a document against this literal.
    ///
    /// Integer literals first try a numeric comparison of the document value;
    /// if the document value is not an integer the comparison fails (no
    /// implicit coercion). String literals compare lexicographically.
    pub fn compare_raw(&self, raw: &str) -> Option<std::cmp::Ordering> {
        match self {
            AttrValue::Int(n) => raw.trim().parse::<i64>().ok().map(|v| v.cmp(n)),
            AttrValue::Str(s) => Some(raw.cmp(s.as_str())),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(n) => write!(f, "{n}"),
            AttrValue::Str(s) => {
                // XPath 1.0 string literals have no escape mechanism: pick
                // whichever quote the value does not contain. A value
                // containing both quotes is unrepresentable as a literal;
                // render with double quotes (the parser will reject a
                // round-trip, surfacing the problem instead of corrupting
                // the value).
                if s.contains('"') && !s.contains('\'') {
                    write!(f, "'{s}'")
                } else {
                    write!(f, "\"{s}\"")
                }
            }
        }
    }
}

/// Reserved [`AttrFilter::name`] selecting the element's character data
/// instead of an attribute: `[text() = "…"]`, `[text()]`.
pub const TEXT_FILTER: &str = "text()";

/// An attribute-based filter `[@name op value]`, the existence test
/// `[@name]`, or a content filter `[text() op value]` / `[text()]`
/// (represented with the reserved name [`TEXT_FILTER`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrFilter {
    /// Attribute name (without the leading `@`).
    pub name: String,
    /// The comparison, or `None` for a bare existence test.
    pub constraint: Option<(CmpOp, AttrValue)>,
}

impl AttrFilter {
    /// Builds an equality filter `[@name = value]`.
    pub fn eq(name: impl Into<String>, value: AttrValue) -> Self {
        AttrFilter {
            name: name.into(),
            constraint: Some((CmpOp::Eq, value)),
        }
    }

    /// Builds an existence filter `[@name]`.
    pub fn exists(name: impl Into<String>) -> Self {
        AttrFilter {
            name: name.into(),
            constraint: None,
        }
    }

    /// Evaluates this filter against a raw attribute value, if the attribute
    /// is present on the element (`Some(raw)`) or absent (`None`).
    pub fn matches(&self, raw: Option<&str>) -> bool {
        match (raw, &self.constraint) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(raw), Some((op, value))) => value
                .compare_raw(raw)
                .map(|ord| op.eval_ord(ord))
                .unwrap_or(false),
        }
    }
}

impl fmt::Display for AttrFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (sigil, name) = if self.name == TEXT_FILTER {
            ("", self.name.as_str())
        } else {
            ("@", self.name.as_str())
        };
        match &self.constraint {
            None => write!(f, "{sigil}{name}"),
            Some((op, value)) => write!(f, "{sigil}{name} {op} {value}"),
        }
    }
}

/// A filter attached to a location step: either an attribute constraint or a
/// nested (relative) path expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StepFilter {
    /// `[@a = 3]`, `[@a]`
    Attribute(AttrFilter),
    /// `[b//c]` — a nested relative path evaluated in the step's context.
    Path(XPathExpr),
}

impl fmt::Display for StepFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepFilter::Attribute(a) => write!(f, "[{a}]"),
            StepFilter::Path(p) => write!(f, "[{p}]"),
        }
    }
}

/// A single location step: axis, node test, and any filters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Step {
    /// How this step relates to the previous one. For the first step of a
    /// relative expression the axis is [`Axis::Child`] by convention (the
    /// matching semantics of a leading relative step do not depend on it).
    pub axis: Axis,
    /// The node test (tag name or wildcard).
    pub test: NodeTest,
    /// Attribute and nested-path filters attached to this step.
    pub filters: Vec<StepFilter>,
}

impl Step {
    /// A plain child step with a named test and no filters.
    pub fn child(tag: impl Into<String>) -> Self {
        Step {
            axis: Axis::Child,
            test: NodeTest::Tag(tag.into()),
            filters: Vec::new(),
        }
    }

    /// A plain descendant step with a named test and no filters.
    pub fn descendant(tag: impl Into<String>) -> Self {
        Step {
            axis: Axis::Descendant,
            test: NodeTest::Tag(tag.into()),
            filters: Vec::new(),
        }
    }

    /// A child wildcard step `*`.
    pub fn wildcard() -> Self {
        Step {
            axis: Axis::Child,
            test: NodeTest::Wildcard,
            filters: Vec::new(),
        }
    }

    /// Returns the attribute filters on this step.
    pub fn attr_filters(&self) -> impl Iterator<Item = &AttrFilter> {
        self.filters.iter().filter_map(|f| match f {
            StepFilter::Attribute(a) => Some(a),
            StepFilter::Path(_) => None,
        })
    }

    /// Returns the nested path filters on this step.
    pub fn path_filters(&self) -> impl Iterator<Item = &XPathExpr> {
        self.filters.iter().filter_map(|f| match f {
            StepFilter::Path(p) => Some(p),
            StepFilter::Attribute(_) => None,
        })
    }
}

/// A parsed XPath expression: an optional leading `/` (absolute vs relative)
/// followed by one or more location steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct XPathExpr {
    /// True when the expression starts at the document root (`/a/b`), false
    /// for relative expressions (`a/b`), which may match anywhere in a
    /// document path.
    pub absolute: bool,
    /// The location steps, in order.
    pub steps: Vec<Step>,
}

impl XPathExpr {
    /// Creates an expression from parts. Panics if `steps` is empty; use the
    /// parser for untrusted input.
    pub fn new(absolute: bool, steps: Vec<Step>) -> Self {
        assert!(
            !steps.is_empty(),
            "an XPath expression needs at least one step"
        );
        XPathExpr { absolute, steps }
    }

    /// Number of location steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the expression has no steps (never produced by the parser).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// True if any step carries a nested path filter (a tree pattern rather
    /// than a single path).
    pub fn has_nested_paths(&self) -> bool {
        self.steps.iter().any(|s| s.path_filters().next().is_some())
    }

    /// True if any step (at any nesting depth) carries an attribute filter.
    pub fn has_attr_filters(&self) -> bool {
        self.steps.iter().any(|s| {
            s.attr_filters().next().is_some() || s.path_filters().any(|p| p.has_attr_filters())
        })
    }

    /// True if the expression contains a descendant (`//`) step.
    pub fn has_descendant(&self) -> bool {
        self.steps.iter().any(|s| s.axis == Axis::Descendant)
    }

    /// Returns a copy of this expression with all filters (attribute and
    /// nested-path) removed — the pure structural skeleton.
    pub fn structural_skeleton(&self) -> XPathExpr {
        XPathExpr {
            absolute: self.absolute,
            steps: self
                .steps
                .iter()
                .map(|s| Step {
                    axis: s.axis,
                    test: s.test.clone(),
                    filters: Vec::new(),
                })
                .collect(),
        }
    }
}

impl fmt::Display for XPathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            let sep = match (i, self.absolute, step.axis) {
                (0, false, _) => "",
                (_, _, Axis::Descendant) => "//",
                (0, true, Axis::Child) => "/",
                (_, _, Axis::Child) => "/",
            };
            f.write_str(sep)?;
            match &step.test {
                NodeTest::Tag(t) => f.write_str(t)?,
                NodeTest::Wildcard => f.write_str("*")?,
            }
            for filter in &step.filters {
                write!(f, "{filter}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_absolute() {
        let e = XPathExpr::new(
            true,
            vec![Step::child("a"), Step::wildcard(), Step::descendant("b")],
        );
        assert_eq!(e.to_string(), "/a/*//b");
    }

    #[test]
    fn display_relative() {
        let e = XPathExpr::new(false, vec![Step::child("a"), Step::child("b")]);
        assert_eq!(e.to_string(), "a/b");
    }

    #[test]
    fn display_attr_filter() {
        let mut s = Step::child("t1");
        s.filters.push(StepFilter::Attribute(AttrFilter::eq(
            "x",
            AttrValue::Int(3),
        )));
        let e = XPathExpr::new(true, vec![Step::wildcard(), s]);
        assert_eq!(e.to_string(), "/*/t1[@x = 3]");
    }

    #[test]
    fn attr_filter_matches() {
        let f = AttrFilter {
            name: "x".into(),
            constraint: Some((CmpOp::Ge, AttrValue::Int(3))),
        };
        assert!(f.matches(Some("6")));
        assert!(f.matches(Some("3")));
        assert!(!f.matches(Some("2")));
        assert!(!f.matches(Some("abc")));
        assert!(!f.matches(None));
    }

    #[test]
    fn attr_exists_filter() {
        let f = AttrFilter::exists("id");
        assert!(f.matches(Some("")));
        assert!(!f.matches(None));
    }

    #[test]
    fn string_comparison() {
        let f = AttrFilter {
            name: "cat".into(),
            constraint: Some((CmpOp::Eq, AttrValue::Str("news".into()))),
        };
        assert!(f.matches(Some("news")));
        assert!(!f.matches(Some("sports")));
    }

    #[test]
    fn skeleton_strips_filters() {
        let mut s = Step::child("a");
        s.filters
            .push(StepFilter::Attribute(AttrFilter::exists("x")));
        let e = XPathExpr::new(true, vec![s]);
        assert!(e.has_attr_filters());
        let sk = e.structural_skeleton();
        assert!(!sk.has_attr_filters());
        assert_eq!(sk.to_string(), "/a");
    }

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Le.eval_ord(Less));
        assert!(CmpOp::Le.eval_ord(Equal));
        assert!(!CmpOp::Le.eval_ord(Greater));
        assert!(CmpOp::Ne.eval_ord(Greater));
        assert!(!CmpOp::Ne.eval_ord(Equal));
    }
}
