//! XPath subset parser and AST for predicate-based XML/XPath filtering.
//!
//! This crate provides the input language of the `pxf` filtering engine: the
//! XPath fragment used by the paper *Predicate-based Filtering of XPath
//! Expressions* (Hou & Jacobsen) — parent-child (`/`) and
//! ancestor-descendant (`//`) location steps, name tests, wildcards (`*`),
//! attribute filters (`[@a op v]`, `[@a]`) and nested path filters
//! (`[rel/path]`).
//!
//! # Example
//!
//! ```
//! use pxf_xpath::{parse, Axis, NodeTest};
//!
//! let expr = parse("/catalog//item[@price >= 10]/name").unwrap();
//! assert!(expr.absolute);
//! assert_eq!(expr.steps.len(), 3);
//! assert_eq!(expr.steps[1].axis, Axis::Descendant);
//! assert_eq!(expr.steps[2].test, NodeTest::Tag("name".into()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod canonical;
mod parser;

pub use ast::{
    AttrFilter, AttrValue, Axis, CmpOp, NodeTest, Step, StepFilter, XPathExpr, TEXT_FILTER,
};
pub use canonical::fnv1a;
pub use parser::{parse, XPathError};
