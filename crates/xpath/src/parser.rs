//! Recursive-descent parser for the XPath subset.
//!
//! Grammar (whitespace is insignificant outside quoted strings):
//!
//! ```text
//! xpath      := ('/' | '//')? step (('/' | '//') step)*
//! step       := nodetest filter*
//! nodetest   := NAME | '*'
//! filter     := '[' (attrfilter | textfilter | xpath) ']'
//! attrfilter := '@' NAME (op value)?
//! textfilter := 'text()' (op value)?
//! op         := '=' | '!=' | '<' | '<=' | '>' | '>='
//! value      := INT | '"' chars '"' | '\'' chars '\''
//! ```

use crate::ast::{AttrFilter, AttrValue, Axis, CmpOp, NodeTest, Step, StepFilter, XPathExpr};
use std::fmt;

/// Error produced when parsing an XPath expression fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Byte offset in the input at which the error occurred.
    pub pos: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XPath parse error at byte {}: {}",
            self.pos, self.message
        )
    }
}

impl std::error::Error for XPathError {}

/// Parses an XPath expression from a string.
///
/// ```
/// use pxf_xpath::parse;
/// let e = parse("/a/*//b[@x = 3]").unwrap();
/// assert_eq!(e.to_string(), "/a/*//b[@x = 3]");
/// ```
pub fn parse(input: &str) -> Result<XPathExpr, XPathError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let expr = p.parse_expr()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(expr)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> XPathError {
        XPathError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parses a full expression. A leading `/` makes it absolute; a leading
    /// `//` makes it absolute with a descendant first step.
    fn parse_expr(&mut self) -> Result<XPathExpr, XPathError> {
        let mut steps = Vec::new();
        let absolute = self.eat(b'/');
        let mut axis = if absolute && self.eat(b'/') {
            Axis::Descendant
        } else {
            Axis::Child
        };
        loop {
            let step = self.parse_step(axis)?;
            steps.push(step);
            self.skip_ws();
            if self.eat(b'/') {
                axis = if self.eat(b'/') {
                    Axis::Descendant
                } else {
                    Axis::Child
                };
                self.skip_ws();
            } else {
                break;
            }
        }
        Ok(XPathExpr { absolute, steps })
    }

    fn parse_step(&mut self, axis: Axis) -> Result<Step, XPathError> {
        self.skip_ws();
        let test = if self.eat(b'*') {
            NodeTest::Wildcard
        } else {
            let name = self.parse_name()?;
            NodeTest::Tag(name)
        };
        let mut filters = Vec::new();
        loop {
            self.skip_ws();
            if !self.eat(b'[') {
                break;
            }
            self.skip_ws();
            let filter = if self.peek() == Some(b'@') {
                self.pos += 1;
                StepFilter::Attribute(self.parse_attr_filter()?)
            } else if self.input[self.pos..].starts_with(b"text()") {
                self.pos += 6;
                self.skip_ws();
                let constraint = match self.peek() {
                    Some(b']') | None => None,
                    _ => {
                        let op = self.parse_op()?;
                        self.skip_ws();
                        let value = self.parse_value()?;
                        Some((op, value))
                    }
                };
                StepFilter::Attribute(AttrFilter {
                    name: crate::ast::TEXT_FILTER.to_string(),
                    constraint,
                })
            } else {
                // A nested path filter. Relative paths only: a leading '/'
                // inside a filter is rejected (context-dependent absolute
                // filters are not part of the subset).
                if self.peek() == Some(b'/') {
                    return Err(self.error("nested path filters must be relative"));
                }
                let inner = self.parse_expr()?;
                StepFilter::Path(inner)
            };
            self.skip_ws();
            if !self.eat(b']') {
                return Err(self.error("expected ']' to close filter"));
            }
            filters.push(filter);
        }
        Ok(Step {
            axis,
            test,
            filters,
        })
    }

    fn parse_attr_filter(&mut self) -> Result<AttrFilter, XPathError> {
        let name = self.parse_name()?;
        self.skip_ws();
        let constraint = match self.peek() {
            Some(b']') | None => None,
            _ => {
                let op = self.parse_op()?;
                self.skip_ws();
                let value = self.parse_value()?;
                Some((op, value))
            }
        };
        Ok(AttrFilter { name, constraint })
    }

    fn parse_op(&mut self) -> Result<CmpOp, XPathError> {
        match self.bump() {
            Some(b'=') => Ok(CmpOp::Eq),
            Some(b'!') => {
                if self.eat(b'=') {
                    Ok(CmpOp::Ne)
                } else {
                    Err(self.error("expected '=' after '!'"))
                }
            }
            Some(b'<') => Ok(if self.eat(b'=') { CmpOp::Le } else { CmpOp::Lt }),
            Some(b'>') => Ok(if self.eat(b'=') { CmpOp::Ge } else { CmpOp::Gt }),
            _ => Err(self.error("expected comparison operator")),
        }
    }

    fn parse_value(&mut self) -> Result<AttrValue, XPathError> {
        match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == q {
                        let s = std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| self.error("invalid UTF-8 in string literal"))?
                            .to_string();
                        self.pos += 1;
                        return Ok(AttrValue::Str(s));
                    }
                    self.pos += 1;
                }
                Err(self.error("unterminated string literal"))
            }
            Some(b) if b.is_ascii_digit() || b == b'-' || b == b'+' => {
                let start = self.pos;
                self.pos += 1;
                while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
                text.parse::<i64>()
                    .map(AttrValue::Int)
                    .map_err(|_| self.error(format!("invalid integer literal '{text}'")))
            }
            _ => Err(self.error("expected a value literal")),
        }
    }

    fn parse_name(&mut self) -> Result<String, XPathError> {
        let start = self.pos;
        // XML NameStartChar (ASCII approximation plus any non-ASCII char).
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80 => {
                self.pos += 1;
            }
            _ => return Err(self.error("expected a name")),
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric()
                || b == b'_'
                || b == b':'
                || b == b'-'
                || b == b'.'
                || b >= 0x80
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map(|s| s.to_string())
            .map_err(|_| self.error("invalid UTF-8 in name"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) {
        let e = parse(s).unwrap();
        assert_eq!(e.to_string(), s, "round-trip failed for {s}");
        let e2 = parse(&e.to_string()).unwrap();
        assert_eq!(e, e2);
    }

    #[test]
    fn simple_absolute() {
        let e = parse("/a/b/b").unwrap();
        assert!(e.absolute);
        assert_eq!(e.len(), 3);
        assert_eq!(e.steps[0].test.tag(), Some("a"));
        assert_eq!(e.steps[2].test.tag(), Some("b"));
        assert!(e.steps.iter().all(|s| s.axis == Axis::Child));
    }

    #[test]
    fn simple_relative() {
        let e = parse("a/a/b/c").unwrap();
        assert!(!e.absolute);
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn single_tag() {
        let e = parse("a").unwrap();
        assert!(!e.absolute);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn descendants_and_wildcards() {
        let e = parse("*/a/*/b//c/*/*").unwrap();
        assert!(!e.absolute);
        assert_eq!(e.len(), 7);
        assert_eq!(e.steps[4].axis, Axis::Descendant);
        assert!(e.steps[0].test.is_wildcard());
    }

    #[test]
    fn leading_double_slash() {
        let e = parse("//a/b").unwrap();
        assert!(e.absolute);
        assert_eq!(e.steps[0].axis, Axis::Descendant);
        assert_eq!(e.steps[1].axis, Axis::Child);
    }

    #[test]
    fn attribute_filters() {
        let e = parse("/*/t1[@x = 3]").unwrap();
        let filters: Vec<_> = e.steps[1].attr_filters().collect();
        assert_eq!(filters.len(), 1);
        assert_eq!(filters[0].name, "x");
        assert_eq!(filters[0].constraint, Some((CmpOp::Eq, AttrValue::Int(3))));
    }

    #[test]
    fn attribute_filter_ops() {
        for (src, op) in [
            ("a[@x = 1]", CmpOp::Eq),
            ("a[@x != 1]", CmpOp::Ne),
            ("a[@x < 1]", CmpOp::Lt),
            ("a[@x <= 1]", CmpOp::Le),
            ("a[@x > 1]", CmpOp::Gt),
            ("a[@x >= 1]", CmpOp::Ge),
        ] {
            let e = parse(src).unwrap();
            let f = e.steps[0].attr_filters().next().unwrap();
            assert_eq!(f.constraint.as_ref().unwrap().0, op, "for {src}");
        }
    }

    #[test]
    fn attribute_existence() {
        let e = parse("a[@id]").unwrap();
        let f = e.steps[0].attr_filters().next().unwrap();
        assert_eq!(f.name, "id");
        assert!(f.constraint.is_none());
    }

    #[test]
    fn string_values() {
        let e = parse("a[@cat = \"news\"]").unwrap();
        let f = e.steps[0].attr_filters().next().unwrap();
        assert_eq!(
            f.constraint,
            Some((CmpOp::Eq, AttrValue::Str("news".into())))
        );
        let e2 = parse("a[@cat = 'news']").unwrap();
        assert_eq!(e.steps, e2.steps);
    }

    #[test]
    fn negative_int_value() {
        let e = parse("a[@x = -5]").unwrap();
        let f = e.steps[0].attr_filters().next().unwrap();
        assert_eq!(f.constraint, Some((CmpOp::Eq, AttrValue::Int(-5))));
    }

    #[test]
    fn nested_path_filter() {
        // The paper's running example: /a[*/c[d]/e]//c[d]/e
        let e = parse("/a[*/c[d]/e]//c[d]/e").unwrap();
        assert!(e.has_nested_paths());
        assert_eq!(e.len(), 3);
        let nested: Vec<_> = e.steps[0].path_filters().collect();
        assert_eq!(nested.len(), 1);
        assert_eq!(nested[0].len(), 3);
        assert!(nested[0].has_nested_paths());
        let inner: Vec<_> = nested[0].steps[1].path_filters().collect();
        assert_eq!(inner[0].to_string(), "d");
    }

    #[test]
    fn multiple_filters_on_step() {
        let e = parse("a[@x = 1][@y >= 2][b/c]").unwrap();
        assert_eq!(e.steps[0].filters.len(), 3);
        assert_eq!(e.steps[0].attr_filters().count(), 2);
        assert_eq!(e.steps[0].path_filters().count(), 1);
    }

    #[test]
    fn whitespace_tolerated() {
        let e = parse("  /a / b [ @x = 3 ] ").unwrap();
        assert_eq!(e.to_string(), "/a/b[@x = 3]");
    }

    #[test]
    fn name_characters() {
        let e = parse("/body.content/block-1/p_2").unwrap();
        assert_eq!(e.steps[0].test.tag(), Some("body.content"));
        assert_eq!(e.steps[1].test.tag(), Some("block-1"));
        assert_eq!(e.steps[2].test.tag(), Some("p_2"));
    }

    #[test]
    fn roundtrips() {
        for s in [
            "/a/b/b",
            "a",
            "a/a/b/c",
            "/a/*/*/b",
            "/a/b/*/*",
            "/*/a/b",
            "/*/*/*/*",
            "a/b/*/*",
            "*/*/a/*/b",
            "a/*/*/b/c",
            "*/*/*/*",
            "/a//b/c",
            "/*/b//c/*",
            "a/b//c",
            "*/a/*/b//c/*/*",
            "/a[*/c[d]/e]//c[d]/e",
            "/*/t1[@x = 3]",
            "a[@id]",
            "a[@cat = \"news\"]//b[@x >= -2]",
        ] {
            roundtrip(s);
        }
    }

    #[test]
    fn errors() {
        for bad in [
            "",
            "/",
            "//",
            "a/",
            "a//",
            "[a]",
            "a[",
            "a[]",
            "a[@]",
            "a[@x !]",
            "a[@x = ]",
            "a[@x = \"unterminated]",
            "a]b",
            "a b",
            "/a[/b]",
            "a[@x = 12x]",
        ] {
            assert!(parse(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn error_position_reported() {
        let err = parse("/a/[b]").unwrap_err();
        assert_eq!(err.pos, 3);
        assert!(err.to_string().contains("byte 3"));
    }
}

#[cfg(test)]
mod quote_tests {
    use super::*;

    #[test]
    fn string_values_with_quotes_roundtrip() {
        let e = parse(r#"a[@t = 'say "hi"']"#).unwrap();
        let rendered = e.to_string();
        assert_eq!(rendered, r#"a[@t = 'say "hi"']"#);
        assert_eq!(parse(&rendered).unwrap(), e);

        let e = parse(r#"a[@t = "it's"]"#).unwrap();
        let rendered = e.to_string();
        assert_eq!(rendered, r#"a[@t = "it's"]"#);
        assert_eq!(parse(&rendered).unwrap(), e);
    }
}
