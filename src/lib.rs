//! # pxf — Predicate-based XPath Filtering
//!
//! A complete implementation of *Predicate-based Filtering of XPath
//! Expressions* (Shuang Hou and H.-A. Jacobsen, ICDE 2006): a filtering
//! engine that matches streams of XML documents against millions of XPath
//! subscriptions by encoding expressions as ordered sets of position
//! predicates, sharing every distinct predicate across expressions, and
//! resolving matches with a backtracking occurrence-determination step.
//!
//! The workspace also contains everything the paper's evaluation needs,
//! re-exported here:
//!
//! * [`engine`]::[`FilterEngine`](engine::FilterEngine) — the paper's
//!   contribution, with the `basic`, `basic-pc` and `basic-pc-ap`
//!   organizations, inline / selection-postponed attribute filtering, and
//!   nested path (tree pattern) support,
//! * [`yfilter`]::[`YFilter`](yfilter::YFilter) — the automaton-based
//!   baseline (shared-prefix NFA),
//! * [`indexfilter`]::[`IndexFilter`](indexfilter::IndexFilter) — the
//!   index-based baseline (prefix tree + element-interval index),
//! * [`xfilter`]::[`XFilter`](xfilter::XFilter) — the historical
//!   per-expression-FSM baseline (§2 lineage),
//! * [`xpath`] — a hand-rolled parser for the XPath subset,
//! * [`xml`] — a streaming XML parser, document trees, and path
//!   extraction,
//! * [`predicate`] — the predicate language and the shared predicate
//!   index,
//! * [`workload`] — NITF-like and PSD-like DTDs plus XPath/XML workload
//!   generators for the experiments,
//! * [`broker`] — a long-running pub/sub broker service over TCP:
//!   snapshot-published subscription churn, a matcher worker pool,
//!   bounded-queue FIFO fan-out, and a load-generator client.
//!
//! # Quick start
//!
//! ```
//! use pxf::prelude::*;
//!
//! let mut engine = FilterEngine::new(Algorithm::AccessPredicate, AttrMode::Inline);
//! let breaking = engine.add_str("/nitf/head//tobject.subject[@tobject.subject.type = \"sports\"]").unwrap();
//! let anywhere = engine.add_str("//hedline/hl1").unwrap();
//!
//! let doc = Document::parse(br#"
//!   <nitf>
//!     <head><tobject><tobject.subject tobject.subject.type="sports"/></tobject></head>
//!     <body><body.head><hedline><hl1/></hedline></body.head></body>
//!   </nitf>"#).unwrap();
//!
//! assert_eq!(engine.match_document(&doc), vec![breaking, anywhere]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pxf_broker as broker;
pub use pxf_core as engine;
pub use pxf_indexfilter as indexfilter;
pub use pxf_predicate as predicate;
pub use pxf_workload as workload;
pub use pxf_xfilter as xfilter;
pub use pxf_xml as xml;
pub use pxf_xpath as xpath;
pub use pxf_yfilter as yfilter;

/// Convenient single-import surface for the common types.
pub mod prelude {
    pub use pxf_core::{
        parallel, Algorithm, AttrMode, BackendError, BatchReport, DocError, FilterBackend,
        FilterEngine, Matcher, Stage1, Stage2, SubId,
    };
    pub use pxf_indexfilter::IndexFilter;
    pub use pxf_workload::{
        Dtd, FaultInjector, Mutation, Regime, XPathGenerator, XPathParams, XmlGenerator, XmlParams,
    };
    pub use pxf_xfilter::XFilter;
    pub use pxf_xml::{
        DocAccess, Document, DocumentBuilder, DocumentStream, ParserLimits, PathDoc, XmlErrorKind,
    };
    pub use pxf_xpath::{parse, XPathExpr};
    pub use pxf_yfilter::YFilter;
}
